"""Core machinery of mutiny-lint: diagnostics, suppressions, checker base.

The repo's contracts — informer ``copy=False`` reads being immutable, all
storage I/O going through the :class:`~repro.core.transport.ShardTransport`
seven ops, campaign-affecting code never touching the wall clock, lock
discipline in the threaded service classes, no swallowed exceptions in
daemon-thread bodies — were enforced only by review and docstring.  The
Mutiny paper's core observation is that exactly such implicit cross-layer
contracts are where orchestrators break; this package makes ours explicit
and machine-checked.

Everything here is stdlib-only (:mod:`ast`, :mod:`tokenize`): the linter
must be runnable in every environment the repo itself runs in, including
the dependency-free CI packaging check.

Design notes
------------

* A **checker** is an :class:`ast.NodeVisitor` subclass with a ``code``
  (``MUT001`` …), a human ``title``, a long-form ``explanation`` (served by
  ``repro.cli lint --explain``), and a path scope.  Checkers receive one
  parsed :class:`LintFile` at a time and return :class:`Diagnostic` items.
* **Suppressions** are inline comments of the form::

      # mutiny-lint: disable=MUT003 -- lease liveness is wall-clock by design
      # mutiny-lint: disable=MUT001,MUT005 -- <justification>

  The justification after ``--`` is mandatory: a suppression records a
  *decision*, and a decision without a reason is exactly the silent
  convention this linter exists to kill.  A justification-less or
  unknown-code suppression is itself reported, as ``MUT000``.  A
  suppression on its own line covers the next code line; a trailing
  comment covers its own line.
* Paths are scoped by their parts relative to the ``repro`` package (e.g.
  ``("core", "distributed.py")``), so fixtures in tests can mirror the
  package layout under any temporary directory.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import ClassVar, Iterable, Iterator, Optional

#: Code reserved for lint hygiene itself: malformed/unjustified suppressions,
#: unknown codes in a disable comment, and files the parser cannot read.
HYGIENE_CODE = "MUT000"

#: ``disable=`` comment grammar.  Matched anywhere inside a comment token so
#: the marker can ride along other markers (e.g. after a ``noqa``).
_DISABLE_RE = re.compile(
    r"mutiny-lint:\s*disable=(?P<codes>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<why>.*?))?\s*$"
)


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One coded finding, anchored to ``path:line:column``."""

    path: str
    line: int
    column: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "file": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """One parsed ``disable=`` comment."""

    line: int
    codes: tuple[str, ...]
    justification: str
    #: Lines this suppression covers (its own, plus the next code line when
    #: the comment stands alone).
    covered_lines: tuple[int, ...]


@dataclass
class LintFile:
    """One parsed source file, handed to every in-scope checker."""

    path: str  # display path (as discovered)
    relparts: tuple[str, ...]  # parts relative to the repro package root
    source: str
    tree: ast.Module
    suppressions: list[Suppression] = field(default_factory=list)

    def suppressed(self, diagnostic: Diagnostic) -> bool:
        return is_suppressed(self.suppressions, diagnostic)


def is_suppressed(
    suppressions: Iterable[Suppression], diagnostic: Diagnostic
) -> bool:
    """Whether any justified suppression covers the diagnostic.

    Standalone (not only a :class:`LintFile` method) because the runner
    also applies retained suppressions to whole-program findings on files
    whose phase-A results came from the incremental cache."""
    for suppression in suppressions:
        if not suppression.justification:
            continue  # unjustified suppressions never silence anything
        if diagnostic.line in suppression.covered_lines and (
            diagnostic.code in suppression.codes
        ):
            return True
    return False


class Checker(ast.NodeVisitor):
    """Base class of every mutiny-lint checker.

    Subclasses set the class attributes, implement visitor methods, and
    call :meth:`report` to record findings.  One checker instance is built
    per (checker, file) pair, so instance state never leaks across files.
    """

    code: ClassVar[str] = "MUT???"
    name: ClassVar[str] = "unnamed"
    title: ClassVar[str] = ""
    explanation: ClassVar[str] = ""

    def __init__(self, file: LintFile):
        self.file = file
        self.findings: list[Diagnostic] = []

    # ------------------------------------------------------------- interface

    @classmethod
    def applies_to(cls, relparts: tuple[str, ...]) -> bool:
        """Whether this checker sweeps the given file (path-scope hook)."""
        return True

    def run(self) -> list[Diagnostic]:
        self.visit(self.file.tree)
        return self.findings

    # ------------------------------------------------------------- reporting

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Diagnostic(
                path=self.file.path,
                line=getattr(node, "lineno", 1),
                column=getattr(node, "col_offset", 0) + 1,
                code=self.code,
                message=message,
            )
        )


# --------------------------------------------------------------------------
# Suppression parsing
# --------------------------------------------------------------------------


def _code_lines(source: str) -> set[int]:
    """Line numbers that hold actual code (suppression targets)."""
    lines = set()
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type in (
                tokenize.COMMENT,
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENDMARKER,
            ):
                continue
            for line in range(token.start[0], token.end[0] + 1):
                lines.add(line)
    except (tokenize.TokenError, IndentationError):
        pass
    return lines


def parse_suppressions(
    path: str, source: str, known_codes: Iterable[str]
) -> tuple[list[Suppression], list[Diagnostic]]:
    """Extract ``disable=`` comments; malformed ones become MUT000 findings."""
    known = set(known_codes)
    suppressions: list[Suppression] = []
    hygiene: list[Diagnostic] = []
    code_lines = _code_lines(source)
    source_lines = source.splitlines()

    def hygiene_finding(line: int, column: int, message: str) -> None:
        hygiene.append(
            Diagnostic(path=path, line=line, column=column, code=HYGIENE_CODE, message=message)
        )

    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):
        return [], []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _DISABLE_RE.search(token.string)
        if match is None:
            # Prose may mention the tool; only a directive-looking comment
            # (the marker followed by a colon) that fails to parse is a
            # hygiene problem.
            if re.search(r"mutiny-lint\s*:", token.string):
                hygiene_finding(
                    token.start[0],
                    token.start[1] + 1,
                    "malformed mutiny-lint comment (expected "
                    "'# mutiny-lint: disable=MUTnnn -- justification')",
                )
            continue
        line = token.start[0]
        codes = tuple(
            code.strip() for code in match.group("codes").split(",") if code.strip()
        )
        justification = (match.group("why") or "").strip()
        unknown = [code for code in codes if code not in known or code == HYGIENE_CODE]
        if unknown:
            hygiene_finding(
                line,
                token.start[1] + 1,
                f"suppression names unknown or unsuppressable code(s) "
                f"{', '.join(unknown)}",
            )
        if not justification:
            hygiene_finding(
                line,
                token.start[1] + 1,
                f"suppression of {', '.join(codes) or '<no code>'} carries no "
                "justification; write '# mutiny-lint: disable=MUTnnn -- why'",
            )
        covered = [line]
        prefix = source_lines[line - 1][: token.start[1]] if line <= len(source_lines) else ""
        if not prefix.strip():  # own-line comment: covers the next code line
            following = sorted(candidate for candidate in code_lines if candidate > line)
            if following:
                covered.append(following[0])
        suppressions.append(
            Suppression(
                line=line,
                codes=codes,
                justification=justification,
                covered_lines=tuple(covered),
            )
        )
    return suppressions, hygiene


# --------------------------------------------------------------------------
# File loading
# --------------------------------------------------------------------------


def load_lint_file(
    path: str, relparts: tuple[str, ...], known_codes: Iterable[str]
) -> tuple[Optional[LintFile], list[Diagnostic]]:
    """Read + parse one file; a syntax error becomes a MUT000 finding."""
    try:
        with tokenize.open(path) as handle:  # honors PEP 263 encoding
            source = handle.read()
    except (OSError, SyntaxError, UnicodeDecodeError) as error:
        return None, [
            Diagnostic(
                path=path, line=1, column=1, code=HYGIENE_CODE,
                message=f"file could not be read: {error}",
            )
        ]
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return None, [
            Diagnostic(
                path=path,
                line=error.lineno or 1,
                column=(error.offset or 0) + 1,
                code=HYGIENE_CODE,
                message=f"file does not parse: {error.msg}",
            )
        ]
    suppressions, hygiene = parse_suppressions(path, source, known_codes)
    lint_file = LintFile(
        path=path, relparts=relparts, source=source, tree=tree, suppressions=suppressions
    )
    return lint_file, hygiene


# --------------------------------------------------------------------------
# Shared AST helpers (used by several checkers)
# --------------------------------------------------------------------------


def root_name(node: ast.AST) -> Optional[str]:
    """The base :class:`ast.Name` id of an attribute/subscript chain.

    ``pod["metadata"]["ownerReferences"].append`` → ``pod``;
    ``self.x`` → ``self``; a chain rooted in a call returns ``None``.
    """
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure attribute chain over a Name, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def walk_functions(tree: ast.AST) -> Iterator[ast.AST]:
    """Every function/async-function definition in the tree."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
