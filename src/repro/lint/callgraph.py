"""Whole-program pass 2: the conservative project call graph.

Built from the :class:`~repro.lint.symbols.ModuleSummary` set of every file
in a lint run, the graph answers one question for every recorded call site:
*which function, if any, does this call enter?*  Resolution is deliberately
conservative — an edge exists only when the target is unambiguous:

* a bare name that is a function/class of the same module, or an imported
  project symbol (``from repro.core.transport import transport_for``);
* a dotted path rooted in an imported module that lands on a project
  function or class (``resultstore.result_to_dict(...)``);
* ``self.m(...)`` / ``cls.m(...)`` resolved through the enclosing class's
  project-internal base chain (inheritance-aware, nearest definition wins);
* a class reference, which resolves to its ``__init__`` when one exists.

Everything else — calls through arbitrary receivers (``obj.m()``), call
results, subscripts, dynamically bound names — is an **unknown callee**:
the graph records the chain (checkers may apply documented lexical
heuristics to it) but follows no edge.  Unknown callees must never crash
the analysis and must never silently *pass* a checker whose contract they
could violate directly (MUT006/MUT007 apply their banned-primitive checks
to the chain itself before giving up on resolution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.lint.symbols import (
    OPAQUE_ROOT,
    CallSite,
    ClassSummary,
    FunctionSummary,
    ModuleSummary,
)

#: Resolution kinds (first element of :class:`Resolution`).
PROJECT = "project"  # a project function: target is its function id
EXTERNAL = "external"  # an external callable: target is its dotted name
UNKNOWN = "unknown"  # dynamic/unresolvable: no edge


@dataclass(frozen=True)
class Resolution:
    kind: str
    #: ``PROJECT``: function id; ``EXTERNAL``: dotted name; ``UNKNOWN``: a
    #: short human reason (used in tests, never in findings).
    target: str


@dataclass(frozen=True)
class FunctionRef:
    """One project function, addressable as ``module:qualname``."""

    fid: str
    module: str
    path: str
    relparts: tuple[str, ...]
    summary: FunctionSummary


class ProjectGraph:
    """Symbol table + call resolution over one lint run's modules."""

    def __init__(self, summaries: Iterable[ModuleSummary]):
        self.modules: dict[str, ModuleSummary] = {}
        self.functions: dict[str, FunctionRef] = {}
        for summary in summaries:
            # Last writer wins on module-name collisions (two files mapping
            # to one dotted name can only happen in pathological fixture
            # trees; determinism matters more than arbitration here).
            self.modules[summary.module] = summary
        for summary in self.modules.values():
            for function in summary.functions.values():
                self._add(summary, function)
            for klass in summary.classes.values():
                for method in klass.methods.values():
                    self._add(summary, method)

    def _add(self, summary: ModuleSummary, function: FunctionSummary) -> None:
        fid = f"{summary.module}:{function.qualname}"
        self.functions[fid] = FunctionRef(
            fid=fid,
            module=summary.module,
            path=summary.path,
            relparts=summary.relparts,
            summary=function,
        )

    # ------------------------------------------------------------- iteration

    def all_functions(self) -> list[FunctionRef]:
        """Every project function, in deterministic (fid) order."""
        return [self.functions[fid] for fid in sorted(self.functions)]

    # ------------------------------------------------------- class hierarchy

    def _resolve_class(
        self, module: ModuleSummary, reference: str
    ) -> Optional[tuple[ModuleSummary, ClassSummary]]:
        """A class by plain name (same module) or dotted project path."""
        if "." not in reference:
            klass = module.classes.get(reference)
            if klass is not None:
                return module, klass
            dotted = module.imports.get(reference)
            if dotted is None:
                return None
            reference = dotted
        owner_name, _, class_name = reference.rpartition(".")
        owner = self.modules.get(owner_name)
        if owner is None:
            return None
        klass = owner.classes.get(class_name)
        if klass is None:
            return None
        return owner, klass

    def resolve_method(
        self, module: ModuleSummary, class_name: str, method: str
    ) -> Optional[str]:
        """``self.method`` resolution: nearest definition along the base
        chain (breadth-first, project-internal bases only)."""
        queue: list[tuple[ModuleSummary, str]] = [(module, class_name)]
        seen: set[tuple[str, str]] = set()
        while queue:
            owner_module, name = queue.pop(0)
            if (owner_module.module, name) in seen:
                continue
            seen.add((owner_module.module, name))
            resolved = self._resolve_class(owner_module, name)
            if resolved is None:
                continue
            owner, klass = resolved
            if method in klass.methods:
                return f"{owner.module}:{klass.name}.{method}"
            for base in klass.bases:
                base_resolved = self._resolve_class(owner, base)
                if base_resolved is not None:
                    base_owner, base_class = base_resolved
                    queue.append((base_owner, base_class.name))
        return None

    def lock_guarded_of(self, module: str, class_name: str) -> Optional[tuple[str, ...]]:
        summary = self.modules.get(module)
        if summary is None:
            return None
        klass = summary.classes.get(class_name)
        return klass.lock_guarded if klass is not None else None

    # ------------------------------------------------------- call resolution

    def _resolve_dotted(self, dotted: str) -> Resolution:
        """A fully dotted path: project function, class ctor, or external."""
        owner_name, _, leaf = dotted.rpartition(".")
        owner = self.modules.get(owner_name)
        if owner is not None:
            if leaf in owner.functions:
                return Resolution(PROJECT, f"{owner.module}:{leaf}")
            if leaf in owner.classes:
                return self._resolve_constructor(owner, owner.classes[leaf])
            return Resolution(UNKNOWN, f"no symbol {leaf!r} in {owner_name}")
        # Two-level project references (``module.Class.method`` via
        # ``from repro.core import resultstore``) resolve one level deeper.
        head, _, method = owner_name.rpartition(".")
        grandparent = self.modules.get(head)
        if grandparent is not None and method in grandparent.classes:
            fid = f"{grandparent.module}:{method}.{leaf}"
            if fid in self.functions:
                return Resolution(PROJECT, fid)
            return Resolution(UNKNOWN, f"no method {leaf!r} on {method}")
        if dotted.startswith("repro."):
            return Resolution(UNKNOWN, f"unindexed project path {dotted!r}")
        return Resolution(EXTERNAL, dotted)

    def _resolve_constructor(
        self, owner: ModuleSummary, klass: ClassSummary
    ) -> Resolution:
        fid = self.resolve_method(owner, klass.name, "__init__")
        if fid is not None:
            return Resolution(PROJECT, fid)
        return Resolution(UNKNOWN, f"class {klass.name!r} has no indexed __init__")

    def resolve(
        self,
        module: ModuleSummary,
        caller: FunctionSummary,
        call: CallSite,
    ) -> Resolution:
        """Resolve one call site recorded in ``caller`` (defined in
        ``module``) to a project function, an external name, or unknown."""
        chain = call.chain
        root = chain[0]
        if root == OPAQUE_ROOT:
            return Resolution(UNKNOWN, "call through a non-name receiver")
        if root in ("self", "cls") and caller.class_name is not None:
            if len(chain) == 2:
                fid = self.resolve_method(module, caller.class_name, chain[1])
                if fid is not None:
                    return Resolution(PROJECT, fid)
                return Resolution(
                    UNKNOWN, f"method {chain[1]!r} not found on {caller.class_name}"
                )
            return Resolution(UNKNOWN, "call through an instance attribute")
        if call.dotted is not None:
            return self._resolve_dotted(call.dotted)
        if len(chain) == 1:
            if root in module.functions:
                return Resolution(PROJECT, f"{module.module}:{root}")
            if root in module.classes:
                return self._resolve_constructor(module, module.classes[root])
            # Not local, not imported: a builtin or a dynamically bound name.
            return Resolution(EXTERNAL, root)
        return Resolution(UNKNOWN, "call through an unresolved receiver")


def build_graph(summaries: Iterable[ModuleSummary]) -> ProjectGraph:
    return ProjectGraph(summaries)
