"""MUT003 — digest-determinism checker.

The repo's single most load-bearing invariant is that serial, parallel,
distributed, federated, and service-run campaigns of one configuration
produce **byte-identical digests** — every CI smoke job diffs exactly that.
The invariant holds only while campaign-affecting code draws time from the
simulated clock (:class:`repro.sim.engine`) and randomness from the seeded
per-purpose streams of :mod:`repro.sim.rng`.  One ``time.time()`` or
``random.random()`` in a controller puts wall-clock or interpreter-global
RNG state into results, and the divergence surfaces as an unexplainable
digest mismatch hours later in a smoke job.

This checker bans wall-clock reads (``time.time``/``time.time_ns``, any
``datetime`` use), ambient randomness (any ``random``/``secrets`` use,
``os.urandom``, ``uuid.uuid1``/``uuid4``), and unseeded ``Random()``
construction across the simulation, controller, and campaign-pipeline
modules.  Monotonic pacing (``time.monotonic``, ``time.sleep``,
``time.perf_counter``) is allowed — it schedules work, it never lands in a
result.  ``sim/rng.py`` is exempt (it *is* the sanctioned wrapper), and the
slice-lease liveness sites in ``core/distributed.py`` are allowlisted:
lease mtimes are wall-clock by design (hosts run NTP; the protocol docs
cover skew) and leases are storage layout, never results.
"""

from __future__ import annotations

import ast

from repro.lint.framework import Checker, dotted_name

#: Package directories whose every module is campaign-digest-affecting.
SCOPE_DIRS = frozenset(
    {
        "sim", "controllers", "apiserver", "cluster", "etcd", "kubelet",
        "scheduler", "network", "monitoring", "objects", "workloads",
        "serialization",
    }
)

#: Individual campaign-pipeline files under core/.
SCOPE_FILES = frozenset(
    {
        ("core", "injector.py"),
        ("core", "experiment.py"),
        ("core", "campaign.py"),
        ("core", "classification.py"),
        ("core", "analysis.py"),
        ("core", "parallel.py"),
        ("core", "resultstore.py"),
        ("core", "federate.py"),
        ("core", "distributed.py"),
    }
)

#: The sanctioned seeded-randomness wrapper itself.
EXEMPT_FILES = frozenset({("sim", "rng.py")})

#: (file, qualname prefix) pairs allowed to read the wall clock.  Slice
#: leases judge liveness by mtime age: wall-clock by design, documented in
#: the distributed protocol, and never part of a result record.
WALL_CLOCK_ALLOWLIST: tuple[tuple[tuple[str, str], str], ...] = (
    (("core", "distributed.py"), "SliceLeases."),
)

#: Banned dotted calls (exact).
BANNED_CALLS = frozenset({"time.time", "time.time_ns", "os.urandom", "uuid.uuid1", "uuid.uuid4"})

#: Modules banned outright in scope (import or use).
BANNED_MODULES = frozenset({"random", "secrets", "datetime"})


class DeterminismChecker(Checker):
    code = "MUT003"
    name = "determinism"
    title = "Wall-clock or ambient randomness in campaign-affecting code"
    explanation = """\
Contract (PRs 1-7, asserted by every CI smoke job): serial, parallel,
distributed, federated, and service-run executions of one campaign
configuration produce byte-identical result digests.  That only holds if
campaign-affecting code takes time exclusively from the simulated clock
(`sim/engine.py` event time) and randomness exclusively from the seeded
per-purpose streams of `sim/rng.py` (`DeterministicRNG.stream(name)` —
seeds are fixed at planning time so outcomes cannot depend on which worker
runs a task).

Banned in `sim/`, `controllers/`, `apiserver/`, `cluster/`, `etcd/`,
`kubelet/`, `scheduler/`, `network/`, `monitoring/`, `objects/`,
`workloads/`, `serialization/`, and the campaign pipeline under `core/`
(injector, experiment, campaign, classification, analysis, parallel,
resultstore, federate, distributed):

  * `time.time()` / `time.time_ns()` — wall-clock into results
  * any `datetime` use — same, with timezones on top
  * any `random` / `secrets` module use, `os.urandom`, `uuid.uuid1/uuid4`
    — interpreter-global or OS randomness that ignores the campaign seed
  * `Random()` constructed without a seed argument

Allowed: `time.monotonic`, `time.sleep`, `time.perf_counter` — pacing and
deadlines schedule work but never land in a result record.

Exemptions: `sim/rng.py` is the sanctioned wrapper (it derives named
`random.Random` streams from the campaign seed).  The `SliceLeases` class
in `core/distributed.py` is allowlisted in the checker itself: lease
liveness is mtime age, wall-clock by design (the protocol documents the
NTP/skew assumptions), and leases are storage coordination — they never
affect which results are computed or stored.
"""

    @classmethod
    def applies_to(cls, relparts: tuple[str, ...]) -> bool:
        tail = tuple(relparts[-2:])
        if tail in EXEMPT_FILES:
            return False
        if tail in SCOPE_FILES:
            return True
        return bool(relparts) and relparts[0] in SCOPE_DIRS

    def __init__(self, file):
        super().__init__(file)
        self._qualname: list[str] = []

    # ------------------------------------------------------------ allowlist

    def _allowlisted(self) -> bool:
        tail = tuple(self.file.relparts[-2:])
        qualname = ".".join(self._qualname) + "."
        for allowed_tail, prefix in WALL_CLOCK_ALLOWLIST:
            if tail == allowed_tail and qualname.startswith(prefix):
                return True
        return False

    def _ban(self, node: ast.AST, what: str) -> None:
        if self._allowlisted():
            return
        self.report(
            node,
            f"{what} in campaign-digest-affecting code; use the simulated "
            "clock / seeded sim/rng.py streams (pacing via time.monotonic "
            "is fine)",
        )

    # ----------------------------------------------------- qualname tracking

    def _visit_scoped(self, node, label: str) -> None:
        self._qualname.append(label)
        self.generic_visit(node)
        self._qualname.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._visit_scoped(node, node.name)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scoped(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scoped(node, node.name)

    # -------------------------------------------------------------- imports

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name.split(".")[0] in BANNED_MODULES:
                self._ban(node, f"import of {alias.name!r}")

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = (node.module or "").split(".")[0]
        if module in BANNED_MODULES:
            self._ban(node, f"import from {node.module!r}")

    # ---------------------------------------------------------------- calls

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        if dotted is not None:
            if dotted in BANNED_CALLS:
                self._ban(node, f"{dotted}()")
            else:
                root = dotted.split(".")[0]
                if root in BANNED_MODULES:
                    self._ban(node, f"{dotted}()")
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "Random"
            and not node.args
            and not node.keywords
        ):
            self._ban(node, "unseeded Random()")
        self.generic_visit(node)
