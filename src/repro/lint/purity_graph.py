"""Graph checkers: MUT006 interprocedural transport purity, plus the
interprocedural extension of MUT001 (tainted reference escaping into a
parameter-mutating helper).

MUT006 retires the documented hole in MUT002: a scoped module that moves
its raw I/O into a helper — in the same file or any other — used to walk
straight past the intraprocedural checker.  With the call graph, every
call site inside a MUT002-scoped function is resolved and searched for a
transitive path to a raw-I/O primitive; the finding lands at the *call
site* in the scoped module and prints the full chain, because the caller
is where the contract is violated and the chain is what makes the finding
actionable.

To avoid double-reporting, MUT006 only fires when the terminal primitive
lives *outside* MUT002's scope (inside scope, MUT002 already reports the
primitive itself).  The transport implementations (``core/transport.py``,
``core/objstore.py``) remain the sanctioned floor: chains are never
followed into them.
"""

from __future__ import annotations

from typing import ClassVar, Mapping, Optional, Sequence

from repro.lint.callgraph import EXTERNAL, PROJECT, ProjectGraph, Resolution
from repro.lint.dataflow import (
    Reachability,
    call_chain_message,
    mutated_param_set,
    site_suppressed,
)
from repro.lint.framework import Diagnostic, Suppression
from repro.lint.symbols import CallSite

#: ``suppressions_by_path`` shape handed to every graph checker.
SuppressionMap = Mapping[str, Sequence[Suppression]]
from repro.lint.transport_purity import (
    BANNED_DOTTED,
    BANNED_MODULES,
    BANNED_OS,
    SCOPE_DIRS,
    SCOPE_FILES,
)

#: Modules whose functions are the storage contract's implementation floor
#: (never descended into — their raw I/O is the point).
EXEMPT_TAILS = frozenset({("core", "transport.py"), ("core", "objstore.py")})

_BANNED_PREFIXES = ("shutil.", "http.client.", "urllib.request.")


class GraphChecker:
    """Base of the whole-program checkers: run once over the project graph
    (not per file), return diagnostics anchored wherever the defect is.

    ``suppressions`` maps file path → parsed inline suppressions; checkers
    use it for *terminal-site* decisions (a justified suppression recorded
    at the banned primitive covers every chain reaching it — the runner
    separately applies suppressions at the finding's own line).
    """

    code: ClassVar[str] = "MUT???"
    name: ClassVar[str] = "unnamed"
    title: ClassVar[str] = ""
    explanation: ClassVar[str] = ""

    def run(
        self, graph: ProjectGraph, suppressions: SuppressionMap
    ) -> list[Diagnostic]:
        raise NotImplementedError


def _in_purity_scope(relparts: tuple[str, ...]) -> bool:
    if tuple(relparts[-2:]) in SCOPE_FILES:
        return True
    return bool(relparts) and relparts[0] in SCOPE_DIRS


def _is_exempt(relparts: tuple[str, ...]) -> bool:
    return tuple(relparts[-2:]) in EXEMPT_TAILS


def raw_io_label(call: CallSite, resolution: Resolution) -> Optional[str]:
    """MUT002's banned-primitive set, expressed over a summarized call."""
    if resolution.kind != EXTERNAL:
        return None
    dotted = resolution.target
    if dotted == "open":
        return "open()"
    if dotted.startswith("os.") and dotted.split(".", 1)[1] in BANNED_OS:
        return f"{dotted}()"
    if dotted in BANNED_DOTTED or dotted in BANNED_MODULES:
        return f"{dotted}()"
    if dotted.startswith(_BANNED_PREFIXES):
        return f"{dotted}()"
    return None


class InterproceduralPurityChecker(GraphChecker):
    code = "MUT006"
    name = "interprocedural-transport-purity"
    title = "Call chain from a transport-pure module reaching raw storage I/O"
    explanation = """\
Contract (PR 4/5, extended by PR 10): every byte the shard store, leases,
federation, or campaign service touches travels through the ShardTransport
seven ops — and that must hold *transitively*.  MUT002 bans the direct
`open()`/`os.remove`/raw-HTTP call inside `core/resultstore.py`,
`core/distributed.py`, `core/federate.py`, and `service/`; MUT006 closes
the hole MUT002 documented: a helper function — same file or any other
module — that performs the raw I/O on the scoped module's behalf.

The whole-program pass indexes every module, builds a conservative call
graph (direct calls, `self.`/`cls.` resolution through the class
hierarchy, imported project symbols), and searches every call site inside
a scoped function for a path to a raw-I/O primitive.  The finding lands at
the call site in the scoped module and prints the full chain, e.g.

    call into 'dump_index' reaches raw storage I/O:
    helpers.dump_index (core/helpers.py:12) -> open() (core/helpers.py:14)

Only chains whose terminal primitive lies *outside* MUT002's scope are
reported (inside scope the primitive itself is already a MUT002 finding),
and chains are never followed into `core/transport.py` / `core/objstore.py`
— the implementations are the contract's sanctioned floor.

Correct pattern: express the helper's operation in the seven ops and pass
it a transport (or extend the contract in `core/transport.py`, where both
backends and the fault-injection proxy implement it once).
"""

    def run(
        self, graph: ProjectGraph, suppressions: SuppressionMap
    ) -> list[Diagnostic]:
        findings: list[Diagnostic] = []

        def banned(ref, call, resolution):
            label = raw_io_label(call, resolution)
            if label is None:
                return None
            if _in_purity_scope(ref.relparts):
                # An in-scope primitive is already a MUT002 finding at its
                # own line; reporting every chain into it would double-count
                # one defect.
                return None
            if site_suppressed(
                suppressions, ref.path, call.line,
                frozenset({"MUT002", self.code}),
            ):
                # The primitive site carries a recorded decision (the
                # control-plane client's non-storage HTTP, say): the
                # decision covers the chains that reach it.
                return None
            return label

        reach = Reachability(
            graph,
            banned=banned,
            exempt=lambda ref: _is_exempt(ref.relparts),
        )
        for ref in graph.all_functions():
            if not _in_purity_scope(ref.relparts):
                continue
            module = graph.modules[ref.module]
            for call in ref.summary.calls:
                resolution = graph.resolve(module, ref.summary, call)
                if resolution.kind != PROJECT:
                    continue
                callee = graph.functions[resolution.target]
                if _is_exempt(callee.relparts):
                    continue
                downstream = reach.chain_from(resolution.target)
                if downstream is None:
                    continue
                chain = call_chain_message(
                    graph, ref, call, resolution.target, downstream
                )
                findings.append(
                    Diagnostic(
                        path=ref.path,
                        line=call.line,
                        column=call.col,
                        code=self.code,
                        message=(
                            f"call into {callee.summary.qualname!r} reaches raw "
                            f"storage I/O bypassing the ShardTransport contract; "
                            f"call chain: {chain}"
                        ),
                    )
                )
        return findings


class InformerEscapeChecker(GraphChecker):
    """MUT001's interprocedural extension: a ``copy=False`` reference
    passed positionally into a project function that mutates — directly or
    transitively — the receiving parameter.

    Shares MUT001's code on purpose: it is the same contract (informer
    cache references are immutable), found through the call graph instead
    of within one function.  Title/explanation stay with the file checker.
    """

    code = "MUT001"
    name = "informer-escape"
    title = ""  # MUT001's title/explanation belong to the file checker
    explanation = ""

    def run(
        self, graph: ProjectGraph, suppressions: SuppressionMap
    ) -> list[Diagnostic]:
        findings: list[Diagnostic] = []
        mutated = mutated_param_set(graph)
        for ref in graph.all_functions():
            module = graph.modules[ref.module]
            for call in ref.summary.calls:
                if not call.tainted_args:
                    continue
                resolution = graph.resolve(module, ref.summary, call)
                if resolution.kind != PROJECT:
                    continue
                callee = graph.functions[resolution.target]
                offset = 1 if callee.summary.class_name is not None else 0
                for position in call.tainted_args:
                    index = position + offset
                    if index >= len(callee.summary.params):
                        continue
                    line = mutated.get((resolution.target, index))
                    if line is None:
                        continue
                    parameter = callee.summary.params[index]
                    findings.append(
                        Diagnostic(
                            path=ref.path,
                            line=call.line,
                            column=call.col,
                            code=self.code,
                            message=(
                                f"copy=False informer cache reference passed to "
                                f"{callee.summary.qualname!r}, which mutates its "
                                f"parameter {parameter!r} "
                                f"(at {'/'.join(callee.relparts)}:{line}); "
                                "deep_copy() before the call, or make the helper "
                                "copy-on-write"
                            ),
                        )
                    )
        return findings
