"""Graph checkers: MUT007 blocking-under-lock and MUT008 lock-order.

Both checkers consume the lock facts pass 1 records on every
:class:`~repro.lint.symbols.FunctionSummary` — which locks are lexically
held at each call site, and where locks are acquired while others are held
— and extend them across function boundaries through the call graph.

The lock model is the lexical one the repo already standardizes on
(MUT004, the ``*_locked`` naming convention): ``with self.<attr>:`` where
the attribute names a lock, module-level ``with LOCK_NAME:``, and the
``*_locked`` suffix meaning "caller holds ``self._lock``".  Locks acquired
through other receivers are out of the model and out of scope — the point
is to guard the handful of service/store classes the ROADMAP grows, not to
be a general race detector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.lint.callgraph import (
    EXTERNAL,
    PROJECT,
    FunctionRef,
    ProjectGraph,
    Resolution,
)
from repro.lint.dataflow import Reachability, call_chain_message, site_suppressed
from repro.lint.framework import Diagnostic
from repro.lint.purity_graph import GraphChecker, SuppressionMap
from repro.lint.symbols import CallSite

#: The ShardTransport contract ops (each is a storage round-trip: disk
#: fsync on POSIX, a conditional HTTP request on the object store).
SEVEN_OPS = frozenset(
    {
        "put", "put_if_absent", "get", "get_with_stat", "list", "list_iter",
        "stat", "delete", "delete_if_unchanged", "refresh", "append",
    }
)

#: Dotted externals that block the calling thread outright.
BLOCKING_EXACT = frozenset({"time.sleep"})
BLOCKING_PREFIXES = (
    "subprocess.",
    "socket.",
    "http.client.",
    "urllib.request.",
    "requests.",
)


def blocking_label(call: CallSite, resolution: Resolution) -> Optional[str]:
    """A short label when the call site is a blocking primitive, else None.

    Two lexical heuristics ride on the chain itself (so unknown callees
    cannot silently pass): a seven-op method call whose receiver chain
    mentions ``transport`` (``self._transport.put(...)`` — a storage
    round-trip), and ``.join()`` on a thread-ish receiver
    (``self._thread.join()``; ``str.join``/``os.path.join`` have no
    thread-named receiver and stay clean).
    """
    if resolution.kind == EXTERNAL:
        dotted = resolution.target
        if dotted in BLOCKING_EXACT or dotted.startswith(BLOCKING_PREFIXES):
            return f"{dotted}()"
    chain = call.chain
    if len(chain) >= 2:
        receiver = chain[:-1]
        if chain[-1] in SEVEN_OPS and any(
            "transport" in part.lower() for part in receiver
        ):
            return f"transport {chain[-1]}()"
        if chain[-1] == "join" and any(
            "thread" in part.lower() for part in receiver
        ):
            return f"{'.'.join(chain)}() (Thread.join)"
    return None


def _display_lock(token: str) -> str:
    return token[2:] if token.startswith("G:") else token


class BlockingUnderLockChecker(GraphChecker):
    code = "MUT007"
    name = "blocking-under-lock"
    title = "Blocking call while holding a lock"
    explanation = """\
Contract: the service and store locks (`CampaignService._lock`,
`BatchedShardWriter._lock`, the handle locks) serialize *state updates*,
never I/O.  A `time.sleep`, a transport seven-op round-trip (disk fsync or
conditional HTTP), `subprocess`, socket/HTTP traffic, or `Thread.join`
executed while holding `self._lock` stalls every other thread that needs
the lock for the full duration of the slow operation — the
latent-deadlock/latency class the Mutiny paper observed in real control
planes (a controller wedged behind a peer's slow write).  `Thread.join`
under a lock the joined thread may itself want is a textbook deadlock.

MUT007 flags blocking primitives at call sites whose lexical lock context
(`with self._lock:` containment, or the `*_locked` caller-holds-the-lock
naming convention) is non-empty — and, through the call graph, calls into
project functions whose bodies transitively reach a blocking primitive,
with the full chain printed in the finding.

Correct pattern: compute and decide under the lock, perform I/O outside
it.  Snapshot the state you need, release the lock, do the round-trip,
re-acquire to publish the outcome (re-validating anything that may have
changed).  Where a design genuinely serializes round-trips under its lock
(the batched writer's generation chaining), say so with a justified
inline suppression — that is a recorded decision, not a silent one.
"""

    def run(
        self, graph: ProjectGraph, suppressions: SuppressionMap
    ) -> list[Diagnostic]:
        findings: list[Diagnostic] = []

        def banned(ref, call, resolution):
            label = blocking_label(call, resolution)
            if label is not None and site_suppressed(
                suppressions, ref.path, call.line, frozenset({self.code})
            ):
                # A justified suppression at the blocking site is a
                # recorded design decision; chains reaching it inherit it.
                return None
            return label

        reach = Reachability(
            graph,
            banned=banned,
            # *_locked bodies carry held-lock context of their own, so any
            # blocking call inside them is reported there directly —
            # descending from callers would double-report it.
            exempt=lambda ref: ref.summary.name.endswith("_locked"),
        )
        for ref in graph.all_functions():
            module = graph.modules[ref.module]
            for call in ref.summary.calls:
                if not call.held_locks:
                    continue
                held = _display_lock(call.held_locks[-1])
                resolution = graph.resolve(module, ref.summary, call)
                label = blocking_label(call, resolution)
                if label is not None:
                    findings.append(
                        Diagnostic(
                            path=ref.path,
                            line=call.line,
                            column=call.col,
                            code=self.code,
                            message=(
                                f"blocking {label} while holding {held}; "
                                "compute under the lock, do I/O outside it"
                            ),
                        )
                    )
                    continue
                if resolution.kind != PROJECT:
                    continue
                callee = graph.functions[resolution.target]
                if callee.summary.name.endswith("_locked"):
                    continue  # its body self-reports (see exempt above)
                downstream = reach.chain_from(resolution.target)
                if downstream is None:
                    continue
                chain = call_chain_message(
                    graph, ref, call, resolution.target, downstream
                )
                findings.append(
                    Diagnostic(
                        path=ref.path,
                        line=call.line,
                        column=call.col,
                        code=self.code,
                        message=(
                            f"call into {callee.summary.qualname!r} while "
                            f"holding {held} reaches blocking "
                            f"{downstream[-1].description}; call chain: {chain}"
                        ),
                    )
                )
        return findings


# ---------------------------------------------------------------------------
# MUT008 — lock-order cycles
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Edge:
    """First-seen acquisition site witnessing ``first -> second``."""

    path: str
    line: int
    col: int


def _qualify(token: str, ref: FunctionRef) -> str:
    """Globally unique lock identity for a lexical token.

    ``self.<attr>`` is per-*class* state: the same token in two classes is
    two different locks.  Module-level locks are per-module.
    """
    if token.startswith("self.") and ref.summary.class_name is not None:
        return f"{ref.module}:{ref.summary.class_name}{token[len('self'):]}"
    if token.startswith("G:"):
        return f"{ref.module}:{token[2:]}"
    return f"{ref.module}:{token}"


def _pretty(qualified: str) -> str:
    return qualified.rsplit(":", 1)[-1]


class _AcquiredLocks:
    """Memoized "which locks may this function acquire, transitively?"."""

    def __init__(self, graph: ProjectGraph):
        self.graph = graph
        self._memo: dict[str, frozenset[str]] = {}
        self._on_stack: set[str] = set()

    def of(self, fid: str) -> frozenset[str]:
        if fid in self._memo:
            return self._memo[fid]
        if fid in self._on_stack:
            return frozenset()  # recursion adds no new acquisitions
        ref = self.graph.functions.get(fid)
        if ref is None:
            return frozenset()
        self._on_stack.add(fid)
        try:
            acquired = {
                _qualify(acquire.lock, ref)
                for acquire in ref.summary.lock_acquires
            }
            module = self.graph.modules[ref.module]
            for call in ref.summary.calls:
                resolution = self.graph.resolve(module, ref.summary, call)
                if resolution.kind == PROJECT:
                    acquired |= self.of(resolution.target)
        finally:
            self._on_stack.discard(fid)
        result = frozenset(acquired)
        self._memo[fid] = result
        return result


class LockOrderChecker(GraphChecker):
    code = "MUT008"
    name = "lock-order"
    title = "Two locks acquired in both orders (deadlock-capable cycle)"
    explanation = """\
Contract: whenever two locks are ever held together, every code path
acquires them in one global order.  Two threads taking lock A then B and
B then A respectively can each grab their first lock and wait forever on
the second — the classic deadlock, and precisely the failure mode that
turns a slow control plane into a wedged one (the Mutiny campaigns class
this as a crash-equivalent: the component stops making progress but keeps
its liveness signals).

MUT008 derives the lock-acquisition order graph for the whole tree: an
edge A -> B is recorded whenever B is acquired while A is held — within
one function body (`with self._lock: ... with self._other_lock:`) or
across functions (a call made under A into a function whose body,
transitively through the call graph, acquires B).  `self.<attr>` locks
are per-class identities; module-level locks per-module.  Any pair of
locks with edges in both directions is reported at both witnessing
acquisition sites.

Correct pattern: pick the order (document it on the outer lock's owner),
or collapse to one lock, or restructure so the second acquisition happens
after the first lock is released — holding two locks at once is almost
always a design smell in this codebase's size of critical sections.
"""

    def run(
        self, graph: ProjectGraph, suppressions: SuppressionMap
    ) -> list[Diagnostic]:
        edges: dict[tuple[str, str], _Edge] = {}
        acquired = _AcquiredLocks(graph)

        def record(first: str, second: str, path: str, line: int, col: int) -> None:
            if first == second:
                return  # re-entry of one lock is not an ordering edge
            edges.setdefault((first, second), _Edge(path, line, col))

        for ref in graph.all_functions():
            module = graph.modules[ref.module]
            for acquire in ref.summary.lock_acquires:
                lock = _qualify(acquire.lock, ref)
                for held in acquire.held:
                    record(
                        _qualify(held, ref), lock,
                        ref.path, acquire.line, acquire.col,
                    )
            for call in ref.summary.calls:
                if not call.held_locks:
                    continue
                resolution = graph.resolve(module, ref.summary, call)
                if resolution.kind != PROJECT:
                    continue
                for lock in sorted(acquired.of(resolution.target)):
                    for held in call.held_locks:
                        record(
                            _qualify(held, ref), lock,
                            ref.path, call.line, call.col,
                        )

        findings: list[Diagnostic] = []
        for (first, second), edge in sorted(edges.items()):
            reverse = edges.get((second, first))
            if reverse is None:
                continue
            findings.append(
                Diagnostic(
                    path=edge.path,
                    line=edge.line,
                    column=edge.col,
                    code=self.code,
                    message=(
                        f"lock-order cycle: {_pretty(second)} is acquired "
                        f"while holding {_pretty(first)} here, but "
                        f"{_pretty(first)} is acquired while holding "
                        f"{_pretty(second)} at {reverse.path}:{reverse.line}; "
                        "pick one global order for this lock pair"
                    ),
                )
            )
        return findings
