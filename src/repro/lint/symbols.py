"""Whole-program pass 1: per-module symbol tables and function summaries.

PR 8's checkers were strictly intraprocedural — one ``ast.NodeVisitor`` per
file, no knowledge of what a called helper does.  That is exactly the hole
the Mutiny paper warns about: failures propagate through *chains* of
components, and a contract checker that cannot see chains misses the
defects that matter (a helper doing raw I/O on behalf of
``resultstore.py``, a blocking call three frames below a ``with
self._lock:``).

This module is the first of the two whole-program passes: it distills each
parsed module into a :class:`ModuleSummary` — classes, bases, methods,
module-level functions, import aliases, and a per-function
:class:`FunctionSummary` of everything the interprocedural checkers need:

* every call site, with its attribute chain, its import-resolved dotted
  target when the root is an imported name, the lock(s) lexically held at
  the call, which positional arguments carry MUT001 ``copy=False`` taint,
  and which arguments are the caller's own parameters (for transitive
  parameter-mutation analysis);
* every lock acquisition (``with self._lock:`` / ``with GLOBAL_LOCK:``)
  with the locks already held at that point — the edges of the per-class
  lock-order graph (MUT008);
* which of the function's parameters the body mutates in place, so the
  call graph can answer "does passing a tainted reference here mutate it?"
  (the MUT001 interprocedural hole).

Summaries are plain picklable data — no AST nodes — so the incremental
cache (:mod:`repro.lint.cache`) can persist them per file and a warm run
skips parsing entirely; only the cheap cross-file graph analysis re-runs.

Documented approximations (conservative by design):

* nested function and lambda bodies are *not* summarized — they execute
  later, on an unknown thread, so attributing their calls to the enclosing
  function's lock context would be wrong more often than right;
* only positional arguments participate in taint/parameter mapping;
* a method called as ``self.m(...)`` / ``cls.m(...)`` is resolvable; a
  call through any other receiver (``obj.m(...)``) is an *unknown callee*
  — the graph records the chain for heuristics but follows no edge.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.lint.framework import LintFile

#: Methods whose call mutates their receiver in place (mirrors MUT001).
MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "update", "setdefault", "sort", "reverse", "add", "discard",
    }
)

#: Accessor names whose ``copy=False`` form returns cache references.
CACHE_READERS = frozenset({"get", "list"})

#: Placeholder root for a call/attribute chain rooted in a non-Name
#: expression (a call result, a subscript, ...).
OPAQUE_ROOT = "<expr>"


def is_lock_name(name: str) -> bool:
    """Whether an attribute/variable name denotes a lock (``_lock``,
    ``lock``, ``_store_lock``, ...).  Purely lexical, documented as such."""
    return "lock" in name.lower()


# ---------------------------------------------------------------------------
# Summary data (picklable, AST-free)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    line: int
    col: int
    #: Attribute chain as written: ``("self", "transport", "put")``,
    #: ``("helper",)``, ``("os", "remove")``.  Root is :data:`OPAQUE_ROOT`
    #: when the receiver is not a plain name.
    chain: tuple[str, ...]
    #: Import-alias-resolved dotted target when the chain is rooted in an
    #: imported name (``os.remove``, ``repro.core.transport.transport_for``);
    #: ``None`` otherwise.
    dotted: Optional[str] = None
    #: Positional argument indexes whose value is a ``copy=False``-tainted
    #: name (MUT001 interprocedural escape analysis).
    tainted_args: tuple[int, ...] = ()
    #: ``(argument_index, caller_parameter_index)`` pairs for positional
    #: arguments that are the caller's own bare parameters.
    param_args: tuple[tuple[int, int], ...] = ()
    #: Lock tokens lexically held at the call (``self._lock`` / ``G:NAME``).
    held_locks: tuple[str, ...] = ()


@dataclass(frozen=True)
class LockAcquire:
    """One ``with <lock>:`` entry inside a function body."""

    line: int
    col: int
    lock: str  # "self.<attr>" or "G:<name>"
    held: tuple[str, ...]  # locks already held at this acquisition


@dataclass(frozen=True)
class FunctionSummary:
    """Everything the interprocedural checkers need about one function."""

    name: str
    qualname: str  # "Class.method" or "function"
    line: int
    col: int
    params: tuple[str, ...]  # positional parameters, in order (incl. self)
    calls: tuple[CallSite, ...] = ()
    lock_acquires: tuple[LockAcquire, ...] = ()
    #: ``(parameter_index, line)`` for parameters the body mutates in place.
    mutated_params: tuple[tuple[int, int], ...] = ()
    class_name: Optional[str] = None


@dataclass
class ClassSummary:
    name: str
    line: int
    #: Base-class references: plain names (same module) or import-resolved
    #: dotted paths; unresolvable bases are kept verbatim and simply fail
    #: project resolution later (conservative).
    bases: tuple[str, ...] = ()
    methods: dict[str, FunctionSummary] = field(default_factory=dict)
    #: The ``_lock_guarded`` declaration, if the class opts into MUT004.
    lock_guarded: Optional[tuple[str, ...]] = None


@dataclass
class ModuleSummary:
    """One module's contribution to the project symbol table."""

    module: str  # dotted module name, e.g. "repro.core.resultstore"
    path: str
    relparts: tuple[str, ...]
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    classes: dict[str, ClassSummary] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Module-name and import resolution
# ---------------------------------------------------------------------------


def module_name_for(relparts: tuple[str, ...]) -> str:
    """Dotted module name for a repro-package-relative path.

    ``("core", "transport.py")`` → ``repro.core.transport``; fixture trees
    that mirror the package layout resolve identically, which is what lets
    the call-graph tests run against temp directories.
    """
    parts = list(relparts)
    if parts and parts[-1].endswith(".py"):
        leaf = parts.pop()[: -len(".py")]
        if leaf != "__init__":
            parts.append(leaf)
    return ".".join(["repro", *parts]) if parts else "repro"


def _package_of(module: str) -> str:
    """The package a module lives in (``repro.core.x`` → ``repro.core``)."""
    return module.rsplit(".", 1)[0] if "." in module else ""


def _resolve_relative(module: str, level: int, target: Optional[str]) -> str:
    """Resolve a ``from .x import y`` module reference to a dotted path."""
    base = _package_of(module)
    for _ in range(level - 1):
        base = _package_of(base)
    if target:
        return f"{base}.{target}" if base else target
    return base


def attribute_chain(node: ast.AST) -> tuple[str, ...]:
    """The written attribute chain of a call target / receiver.

    ``self.transport.put`` → ``("self", "transport", "put")``; a chain
    rooted in a non-Name expression gets :data:`OPAQUE_ROOT` as its root.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        parts.append(OPAQUE_ROOT)
    return tuple(reversed(parts))


# ---------------------------------------------------------------------------
# Function-body indexing
# ---------------------------------------------------------------------------


def _is_copy_false_read(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
        return False
    if node.func.attr not in CACHE_READERS:
        return False
    for keyword in node.keywords:
        if keyword.arg == "copy" and isinstance(keyword.value, ast.Constant):
            return keyword.value.value is False
    return False


def _is_deep_copy_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    if isinstance(node.func, ast.Name):
        return node.func.id == "deep_copy"
    if isinstance(node.func, ast.Attribute):
        return node.func.attr == "deep_copy"
    return False


def _lock_token(expr: ast.expr) -> Optional[str]:
    """The lock token of a ``with`` context expression, or ``None``.

    Recognized: ``self.<attr>`` where the attr names a lock, and a bare
    module-level ``NAME`` that names a lock.
    """
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and is_lock_name(expr.attr)
    ):
        return f"self.{expr.attr}"
    if isinstance(expr, ast.Name) and is_lock_name(expr.id):
        return f"G:{expr.id}"
    return None


class _FunctionIndexer:
    """Walks one function body collecting calls, locks, taint, mutations.

    The walk is sequential and lexical: statements in source order, one
    taint environment per function, ``with``-lock containment tracked as a
    stack.  Nested function/lambda bodies are skipped entirely (deferred
    execution — see the module docstring).
    """

    def __init__(self, imports: dict[str, str], params: tuple[str, ...]):
        self.imports = imports
        self.params = params
        self.param_index = {name: index for index, name in enumerate(params)}
        self.calls: list[CallSite] = []
        self.acquires: list[LockAcquire] = []
        self.mutated: dict[int, int] = {}  # param index -> first mutation line
        self._tainted: set[str] = set()  # names carrying "ref" taint
        self._element_tainted: set[str] = set()  # fresh containers of refs

    # -------------------------------------------------------------- statements

    def walk(self, statements: list[ast.stmt], held: tuple[str, ...]) -> None:
        for statement in statements:
            self._statement(statement, held)

    def _statement(self, node: ast.stmt, held: tuple[str, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # deferred execution / separate scope
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held
            for item in node.items:
                self._expression(item.context_expr, inner)
                token = _lock_token(item.context_expr)
                if token is not None:
                    self.acquires.append(
                        LockAcquire(
                            line=item.context_expr.lineno,
                            col=item.context_expr.col_offset + 1,
                            lock=token,
                            held=inner,
                        )
                    )
                    inner = (*inner, token)
            self.walk(node.body, inner)
            return
        if isinstance(node, ast.Assign):
            self._expression(node.value, held)
            taint = self._taint_of(node.value)
            for target in node.targets:
                self._assign_target(target, taint, held)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._expression(node.value, held)
                self._assign_target(node.target, self._taint_of(node.value), held)
            return
        if isinstance(node, ast.AugAssign):
            self._expression(node.value, held)
            self._mutation_target(node.target)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                self._mutation_target(target)
            return
        if isinstance(node, ast.For):
            self._expression(node.iter, held)
            iter_taint = self._taint_of(node.iter)
            # Iterating either taint kind yields cache references.
            self._assign_target(node.target, "ref" if iter_taint else None, held)
            self.walk(node.body, held)
            self.walk(node.orelse, held)
            return
        if isinstance(node, ast.Try):
            self.walk(node.body, held)
            for handler in node.handlers:
                self.walk(handler.body, held)
            self.walk(node.orelse, held)
            self.walk(node.finalbody, held)
            return
        # Generic compound statements (If, While, Match, Expr, Return, ...):
        # recurse into nested statement lists, scan expressions for calls.
        for _field, value in ast.iter_fields(node):
            if isinstance(value, list):
                statements = [item for item in value if isinstance(item, ast.stmt)]
                if statements:
                    self.walk(statements, held)
                for item in value:
                    if isinstance(item, ast.expr):
                        self._expression(item, held)
            elif isinstance(value, ast.expr):
                self._expression(value, held)
            elif isinstance(value, ast.stmt):
                self._statement(value, held)

    # ------------------------------------------------------------------ taint

    def _taint_of(self, value: ast.expr) -> Optional[str]:
        """``"ref"``/``"elements"`` taint carried by a value, or ``None``."""
        if _is_deep_copy_call(value):
            return None
        if _is_copy_false_read(value):
            return "ref"
        if isinstance(value, ast.Name):
            if value.id in self._tainted:
                return "ref"
            if value.id in self._element_tainted:
                return "elements"
        if isinstance(value, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            if _is_deep_copy_call(value.elt):
                return None
            for generator in value.generators:
                if self._taint_of(generator.iter) is not None:
                    return "elements"
        return None

    def _assign_target(
        self, target: ast.expr, taint: Optional[str], held: tuple[str, ...]
    ) -> None:
        if isinstance(target, ast.Name):
            self._tainted.discard(target.id)
            self._element_tainted.discard(target.id)
            # A rebound parameter name no longer aliases the caller's
            # object (``p = deep_copy(p)`` is the sanctioned pattern):
            # later mutations through it are not parameter mutations.
            self.param_index.pop(target.id, None)
            if taint == "ref":
                self._tainted.add(target.id)
            elif taint == "elements":
                self._element_tainted.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign_target(element, taint, held)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self._mutation_target(target)
            self._expression(target, held)

    def _mutation_target(self, target: ast.expr) -> None:
        """Record in-place mutation of a parameter through attr/item access."""
        node: ast.AST = target
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        if isinstance(node, ast.Name):
            index = self.param_index.get(node.id)
            # A bare rebind (``p = ...``) is not a mutation; only attribute
            # or item access through the parameter is.
            if index is not None and node is not target:
                self.mutated.setdefault(index, target.lineno)

    # ------------------------------------------------------------ expressions

    def _expression(self, node: ast.expr, held: tuple[str, ...]) -> None:
        """Collect every call in an expression tree (skipping deferred defs)."""
        for child in ast.walk(node):
            if isinstance(child, ast.Lambda):
                continue
            if isinstance(child, ast.Call):
                self._record_call(child, held)

    def _record_call(self, node: ast.Call, held: tuple[str, ...]) -> None:
        chain = attribute_chain(node.func)
        dotted: Optional[str] = None
        root = chain[0]
        if root != OPAQUE_ROOT and root in self.imports and len(chain) >= 1:
            dotted = ".".join((self.imports[root], *chain[1:]))
        tainted: list[int] = []
        param_args: list[tuple[int, int]] = []
        for position, argument in enumerate(node.args):
            if isinstance(argument, ast.Name):
                if argument.id in self._tainted:
                    tainted.append(position)
                param = self.param_index.get(argument.id)
                if param is not None:
                    param_args.append((position, param))
        # A mutating method call through a parameter is a direct mutation.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATING_METHODS
        ):
            self._mutation_target(node.func)
        self.calls.append(
            CallSite(
                line=node.lineno,
                col=node.col_offset + 1,
                chain=chain,
                dotted=dotted,
                tainted_args=tuple(tainted),
                param_args=tuple(param_args),
                held_locks=held,
            )
        )


# ---------------------------------------------------------------------------
# Module indexing
# ---------------------------------------------------------------------------


def _positional_params(
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
) -> tuple[str, ...]:
    arguments = node.args
    return tuple(a.arg for a in (*arguments.posonlyargs, *arguments.args))


def _summarize_function(
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
    imports: dict[str, str],
    class_name: Optional[str],
) -> FunctionSummary:
    params = _positional_params(node)
    indexer = _FunctionIndexer(imports, params)
    # The *_locked suffix is the repo's caller-holds-the-lock convention
    # (see MUT004): treat the whole body as holding self._lock.
    initial: tuple[str, ...] = ()
    if class_name is not None and node.name.endswith("_locked"):
        initial = ("self._lock",)
    indexer.walk(node.body, initial)
    qualname = f"{class_name}.{node.name}" if class_name else node.name
    return FunctionSummary(
        name=node.name,
        qualname=qualname,
        line=node.lineno,
        col=node.col_offset + 1,
        params=params,
        calls=tuple(indexer.calls),
        lock_acquires=tuple(indexer.acquires),
        mutated_params=tuple(sorted(indexer.mutated.items())),
        class_name=class_name,
    )


def _lock_guarded_declaration(node: ast.ClassDef) -> Optional[tuple[str, ...]]:
    for statement in node.body:
        if not isinstance(statement, ast.Assign):
            continue
        for target in statement.targets:
            if isinstance(target, ast.Name) and target.id == "_lock_guarded":
                value = statement.value
                if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                    return tuple(
                        element.value
                        for element in value.elts
                        if isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                    )
                return ()
    return None


def _base_reference(expr: ast.expr, imports: dict[str, str]) -> Optional[str]:
    chain = attribute_chain(expr)
    if chain[0] == OPAQUE_ROOT:
        return None
    if len(chain) == 1:
        return chain[0]
    if chain[0] in imports:
        return ".".join((imports[chain[0]], *chain[1:]))
    return ".".join(chain)


def index_module(lint_file: LintFile) -> ModuleSummary:
    """Distill one parsed file into its :class:`ModuleSummary`."""
    module = module_name_for(lint_file.relparts)
    summary = ModuleSummary(
        module=module, path=lint_file.path, relparts=lint_file.relparts
    )
    for node in lint_file.tree.body:
        _index_statement(node, summary)
    return summary


def _index_statement(node: ast.stmt, summary: ModuleSummary) -> None:
    if isinstance(node, ast.Import):
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            summary.imports[bound] = target
    elif isinstance(node, ast.ImportFrom):
        base = (
            _resolve_relative(summary.module, node.level, node.module)
            if node.level
            else (node.module or "")
        )
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            summary.imports[bound] = f"{base}.{alias.name}" if base else alias.name
    elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        summary.functions[node.name] = _summarize_function(
            node, summary.imports, class_name=None
        )
    elif isinstance(node, ast.ClassDef):
        klass = ClassSummary(
            name=node.name,
            line=node.lineno,
            bases=tuple(
                reference
                for base in node.bases
                if (reference := _base_reference(base, summary.imports)) is not None
            ),
            lock_guarded=_lock_guarded_declaration(node),
        )
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                klass.methods[statement.name] = _summarize_function(
                    statement, summary.imports, class_name=node.name
                )
        summary.classes[node.name] = klass
    elif isinstance(node, (ast.If, ast.Try)):
        # Conditional imports / definitions at module level (the common
        # ``try: import x`` pattern) still contribute symbols.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                _index_statement(child, summary)
