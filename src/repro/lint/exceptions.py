"""MUT005 — swallowed-exception checker.

PR 5's worst bug was a heartbeat daemon thread whose body ended in
``except Exception: pass``: the thread died silently, the lease expired,
and a second worker double-claimed the slice — the failure surfaced as a
digest mismatch with no log line pointing anywhere near the cause.  A
swallowed exception converts a loud, attributable crash into distributed
corruption, which is precisely the failure-propagation pattern the Mutiny
paper catalogs.

This checker flags every ``except`` handler that is **broad** (bare
``except:``, ``except Exception``, ``except BaseException``, or a tuple
containing either) and **discards** the error: the body neither re-raises
(``raise`` / ``raise X from err``) nor uses the bound exception name in any
way (logging it, recording it on a result, wrapping it).  Narrow handlers
(``except KeyError:``) are out of scope — catching a specific exception and
choosing a fallback is ordinary control flow; it is the catch-everything-
say-nothing pattern that hides bugs.
"""

from __future__ import annotations

import ast

from repro.lint.framework import Checker

#: Exception names considered catch-all.
BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _is_broad(exception_type: ast.expr | None) -> bool:
    if exception_type is None:  # bare except:
        return True
    if isinstance(exception_type, ast.Name):
        return exception_type.id in BROAD_NAMES
    if isinstance(exception_type, ast.Attribute):
        return exception_type.attr in BROAD_NAMES
    if isinstance(exception_type, ast.Tuple):
        return any(_is_broad(element) for element in exception_type.elts)
    return False


def _raises(node: ast.AST) -> bool:
    """Whether the subtree contains a ``raise``, not counting nested defs
    (a ``raise`` inside a nested function runs later, if ever — it does not
    re-raise on behalf of this handler)."""
    if isinstance(node, ast.Raise):
        return True
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        return False
    return any(_raises(child) for child in ast.iter_child_nodes(node))


def _body_raises(body: list[ast.stmt]) -> bool:
    return any(_raises(statement) for statement in body)


def _body_uses_name(body: list[ast.stmt], name: str) -> bool:
    for statement in body:
        for node in ast.walk(statement):
            if isinstance(node, ast.Name) and node.id == name:
                return True
    return False


class SwallowedExceptionChecker(Checker):
    code = "MUT005"
    name = "swallowed-exception"
    title = "Broad except handler that discards the error"
    explanation = """\
Contract (PR 5 post-mortem): no code path — least of all a daemon-thread
body — may catch everything and discard the error.  The motivating bug was
the slice-lease heartbeat thread: an `except Exception: pass` around the
refresh call meant a transport outage killed the heartbeat silently, the
lease expired while the worker kept computing, a second worker claimed the
slice, and the campaign digest diverged with zero log evidence.  A
swallowed exception turns a crash you can attribute into corruption you
cannot.

Flagged: any handler that is broad — bare `except:`, `except Exception`,
`except BaseException`, or a tuple containing either — whose body neither
re-raises nor uses the bound error in any way (no `raise`, no
`raise New(...) from err`, no logging/recording of `err`).

Not flagged:

  * narrow handlers (`except KeyError: return default`) — choosing a
    fallback for a specific, anticipated exception is control flow;
  * broad handlers that *consume* the error: re-raise it, wrap it
    (`raise CampaignError(...) from err`), record it
    (`self._error = err`, `errors.append(str(err))`), or log it;
  * intentional last-resort barriers, which carry a justified
    suppression naming where the error goes instead.

Correct pattern for a thread body that must not die invisibly:

    try:
        self._refresh_loop()
    except Exception as err:
        with self._lock:
            self._error = err       # surfaced to join()/result()
"""

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if _is_broad(node.type):
            uses_error = node.name is not None and _body_uses_name(node.body, node.name)
            if not _body_raises(node.body) and not uses_error:
                caught = "bare except" if node.type is None else "broad except"
                self.report(
                    node,
                    f"{caught} swallows the error (no re-raise, error object "
                    "unused); record it, wrap it, or re-raise — a silent "
                    "handler turns crashes into unattributable corruption",
                )
        self.generic_visit(node)
