"""mutiny-lint: AST-based enforcement of the repo's cross-layer contracts.

Five checkers (``MUT001``–``MUT005``) mechanize conventions that previous
PRs established in docstrings and review — informer ``copy=False``
immutability, ShardTransport purity, digest determinism, lock discipline,
no swallowed exceptions — plus a hygiene code (``MUT000``) for the lint
machinery itself.  Stdlib-only by design; run via ``repro.cli lint``.
"""

from repro.lint.framework import (
    HYGIENE_CODE,
    Checker,
    Diagnostic,
    LintFile,
    Suppression,
    parse_suppressions,
)
from repro.lint.runner import (
    ALL_CHECKERS,
    EXPLANATIONS,
    JSON_SCHEMA_VERSION,
    KNOWN_CODES,
    TITLES,
    LintReport,
    LintUsageError,
    lint_paths,
    select_codes,
)

__all__ = [
    "ALL_CHECKERS",
    "Checker",
    "Diagnostic",
    "EXPLANATIONS",
    "HYGIENE_CODE",
    "JSON_SCHEMA_VERSION",
    "KNOWN_CODES",
    "LintFile",
    "LintReport",
    "LintUsageError",
    "Suppression",
    "TITLES",
    "lint_paths",
    "parse_suppressions",
    "select_codes",
]
