"""mutiny-lint: whole-program enforcement of the repo's cross-layer contracts.

Nine codes (``MUT001``–``MUT009``) mechanize conventions that previous PRs
established in docstrings and review — informer ``copy=False`` immutability
(intraprocedural *and* through the call graph), ShardTransport purity
(direct and transitive), digest determinism (ambient entropy and unsorted
set/listing iteration), lock discipline, blocking-under-lock, lock-order
cycles, no swallowed exceptions — plus a hygiene code (``MUT000``) for the
lint machinery itself.  Since PR 10 a run has two phases: per-file checkers
over each parsed module (cached incrementally under ``.mutiny-lint-cache/``),
then whole-program checkers over a conservative project call graph.  A
findings baseline (``lint-baseline.json``) ratchets adoption: default runs
fail only on findings not recorded there, and stale entries must be
removed.  Stdlib-only by design; run via ``repro.cli lint``.
"""

from repro.lint.baseline import BaselineError, BaselineResult
from repro.lint.cache import DEFAULT_CACHE_DIR, LintCache
from repro.lint.callgraph import ProjectGraph, Resolution, build_graph
from repro.lint.framework import (
    HYGIENE_CODE,
    Checker,
    Diagnostic,
    LintFile,
    Suppression,
    is_suppressed,
    parse_suppressions,
)
from repro.lint.runner import (
    ALL_CHECKERS,
    EXPLANATIONS,
    GRAPH_CHECKERS,
    JSON_SCHEMA_VERSION,
    KNOWN_CODES,
    TITLES,
    LintReport,
    LintUsageError,
    lint_paths,
    select_codes,
)
from repro.lint.symbols import ModuleSummary, index_module

__all__ = [
    "ALL_CHECKERS",
    "BaselineError",
    "BaselineResult",
    "Checker",
    "DEFAULT_CACHE_DIR",
    "Diagnostic",
    "EXPLANATIONS",
    "GRAPH_CHECKERS",
    "HYGIENE_CODE",
    "JSON_SCHEMA_VERSION",
    "KNOWN_CODES",
    "LintCache",
    "LintFile",
    "LintReport",
    "LintUsageError",
    "ModuleSummary",
    "ProjectGraph",
    "Resolution",
    "Suppression",
    "TITLES",
    "build_graph",
    "index_module",
    "is_suppressed",
    "lint_paths",
    "parse_suppressions",
    "select_codes",
]
