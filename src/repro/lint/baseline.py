"""The findings baseline / ratchet.

A lint gate that cannot be adopted mid-stream never gets adopted: the
first run on a grown tree reports historical findings whose fixes are out
of scope for the PR that wants the gate.  The baseline records those
findings once (``repro.cli lint --write-baseline`` →
``lint-baseline.json``), and default runs then fail only on findings
*not* in the baseline — new code is held to the full standard immediately
while old findings are paid down over time.

The ratchet: a baseline entry that no longer matches any current finding
is **stale**, and stale entries fail the run too.  Fixing a baselined
finding therefore *requires* committing the shrunk baseline — the
recorded debt only ever goes down.  The shipped ``lint-baseline.json`` is
empty: PR 10's sweep fixed every finding in-tree, and the machinery
exists for the trees this one grows into.

Matching is by (repro-relative path, code, message) as a **multiset** —
line numbers churn with every edit and would make the baseline a merge
magnet, while the message text pins the finding tightly enough that a
*new* instance of an old defect class in the same file still fails.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable

from repro.lint.framework import Diagnostic

#: Bumped when the key or file format changes incompatibly.
BASELINE_VERSION = 1


class BaselineError(ValueError):
    """A baseline file that cannot be used (bad JSON, wrong shape)."""


def _key(diagnostic: Diagnostic) -> tuple[str, str, str]:
    return (_relative(diagnostic.path), diagnostic.code, diagnostic.message)


def _relative(path: str) -> str:
    """Path parts after the last ``repro`` segment, ``/``-joined — the same
    convention checker scoping uses, so baselines survive checkouts at
    different roots (and fixture trees in tests)."""
    parts = [part for part in path.replace("\\", "/").split("/") if part]
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1 :])
    return "/".join(parts)


@dataclass
class BaselineResult:
    """One application of a baseline to a run's findings."""

    #: Findings not covered by the baseline (these fail the run).
    new: list[Diagnostic] = field(default_factory=list)
    #: Findings matched and silenced by a baseline entry.
    matched: list[Diagnostic] = field(default_factory=list)
    #: Baseline entries with no current finding — the ratchet: these fail
    #: the run until the shrunk baseline is committed.
    stale: list[tuple[str, str, str]] = field(default_factory=list)


def serialize(diagnostics: Iterable[Diagnostic]) -> str:
    """The ``lint-baseline.json`` content for a set of findings."""
    entries = sorted(_key(diagnostic) for diagnostic in diagnostics)
    payload = {
        "version": BASELINE_VERSION,
        "entries": [
            {"file": file, "code": code, "message": message}
            for file, code, message in entries
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def parse(text: str) -> list[tuple[str, str, str]]:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise BaselineError(f"baseline is not valid JSON: {error}") from error
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline version mismatch (expected {BASELINE_VERSION}); "
            "regenerate with --write-baseline"
        )
    entries = payload.get("entries")
    if not isinstance(entries, list):
        raise BaselineError("baseline has no 'entries' list")
    keys: list[tuple[str, str, str]] = []
    for entry in entries:
        if not isinstance(entry, dict) or not all(
            isinstance(entry.get(k), str) for k in ("file", "code", "message")
        ):
            raise BaselineError(f"malformed baseline entry: {entry!r}")
        keys.append((entry["file"], entry["code"], entry["message"]))
    return keys


def apply(
    diagnostics: Iterable[Diagnostic], entries: Iterable[tuple[str, str, str]]
) -> BaselineResult:
    """Split findings into new / matched and surface stale entries.

    Multiset semantics: an entry silences exactly one matching finding per
    occurrence in the baseline, so two instances of one defect need two
    recorded entries — adding a *second* instance of a baselined defect
    still fails.
    """
    budget: dict[tuple[str, str, str], int] = {}
    for key in entries:
        budget[key] = budget.get(key, 0) + 1
    result = BaselineResult()
    for diagnostic in sorted(diagnostics):
        key = _key(diagnostic)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            result.matched.append(diagnostic)
        else:
            result.new.append(diagnostic)
    for key in sorted(budget):
        result.stale.extend([key] * budget[key])
    return result
