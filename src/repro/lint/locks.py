"""MUT004 — lock-discipline checker.

The threaded classes of the service and store layers (``CampaignService``
serving concurrent HTTP handlers, ``CampaignHandle`` bridging a background
campaign thread, ``BatchedShardWriter`` shared by a worker's batch loop,
``SliceLeases`` shared with the heartbeat thread) guard their mutable state
with ``self._lock`` — by convention.  PR 5's heartbeat bug (state read off
the lock in a daemon thread) is the class of defect this checker closes:
the convention becomes a *declaration* the linter enforces.

A class opts in by declaring its guarded attributes::

    class CampaignService:
        _lock_guarded = ("_campaigns",)

Rules enforced on every method of a declaring class:

* A guarded attribute (``self._campaigns``) may be read or written only
  lexically inside a ``with self._lock:`` block.  ``__init__`` is exempt
  (the object is not shared yet), as is any method whose name ends in
  ``_locked`` (the caller-holds-the-lock convention).
* Any *other* ``self.<attr>`` assignment outside ``__init__`` is flagged:
  in a threaded class, mutable shared state is either registered and
  guarded, or it does not exist.  (``self._lock`` itself is exempt.)
* ``_lock_guarded = ()`` declares a **frozen-after-init** class: no lock is
  required, and the second rule alone enforces that nothing mutates after
  construction — the contract ``SliceLeases`` relies on to share one
  instance with the heartbeat thread.

The containment check is lexical, which is the documented approximation: a
closure defined inside a ``with`` block but executed later still passes.
Review owns that residue; the checker kills the common direct pattern.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.lint.framework import Checker

#: Class-body attribute carrying the guarded-attribute declaration.
DECLARATION = "_lock_guarded"

#: The lock attribute the discipline is defined against.
LOCK_ATTR = "_lock"


def _declared_guarded(class_node: ast.ClassDef) -> Optional[frozenset[str]]:
    """The class's ``_lock_guarded`` declaration, or ``None`` when absent."""
    for statement in class_node.body:
        if not isinstance(statement, ast.Assign):
            continue
        for target in statement.targets:
            if isinstance(target, ast.Name) and target.id == DECLARATION:
                value = statement.value
                if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                    names = []
                    for element in value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            names.append(element.value)
                    return frozenset(names)
                return frozenset()
    return None


def _is_self_lock(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == LOCK_ATTR
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


class LockDisciplineChecker(Checker):
    code = "MUT004"
    name = "lock-discipline"
    title = "Registered lock-guarded attribute accessed off the lock"
    explanation = """\
Contract (PR 5/7): the threaded classes — `CampaignService` (one registry
mutated by every concurrent HTTP handler thread plus the rehydration
thread), `CampaignHandle` (state shared between the caller and a background
campaign thread), `BatchedShardWriter` (a worker loop's open shard group),
`SliceLeases` (shared with the heartbeat thread) — keep their mutable state
consistent by taking `self._lock` around every access.  PR 5 fixed exactly
this bug class in the heartbeat path; this checker keeps it fixed.

A class registers its guarded attributes:

    class CampaignHandle:
        _lock_guarded = ("_state", "_result", "_error", "_thread")

and the checker then enforces, in every method:

  * registered attributes are read/written only inside `with self._lock:`
    (lexically; `__init__` and `*_locked`-suffixed methods are exempt —
    the former runs before the object is shared, the latter documents
    caller-holds-the-lock);
  * no unregistered `self.<attr>` is *assigned* outside `__init__` —
    threaded-class state is registered and guarded, or it is immutable;
  * `_lock_guarded = ()` declares a frozen-after-init class (the contract
    that lets `SliceLeases` be shared lock-free with the heartbeat
    thread).

Correct pattern for publishing state computed outside the lock:

    thread = threading.Thread(target=..., daemon=True)
    with self._lock:
        if self._thread is not None:
            return self
        self._thread = thread
    thread.start()      # local name: no off-lock attribute read

The check is lexical containment, not an escape analysis: a closure built
under the lock but called later still passes.  Thread-safe primitives
(`threading.Event`, queues) need no registration — their methods are their
lock.
"""

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        guarded = _declared_guarded(node)
        if guarded is not None:
            for statement in node.body:
                if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._check_method(statement, guarded)
        self.generic_visit(node)  # nested classes may declare too

    # --------------------------------------------------------------- methods

    def _check_method(self, method, guarded: frozenset[str]) -> None:
        exempt_from_lock = method.name == "__init__" or method.name.endswith("_locked")
        allow_assign = method.name == "__init__"
        self._walk(method.body, guarded, locked=exempt_from_lock, allow_assign=allow_assign)

    def _walk(self, statements, guarded, locked: bool, allow_assign: bool) -> None:
        for statement in statements:
            self._check_statement(statement, guarded, locked, allow_assign)

    def _check_statement(self, node: ast.AST, guarded, locked: bool, allow_assign: bool) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            holds = locked or any(_is_self_lock(item.context_expr) for item in node.items)
            for item in node.items:
                if not locked:
                    self._check_expression(item.context_expr, guarded, locked, allow_assign)
            self._walk(node.body, guarded, locked=holds, allow_assign=allow_assign)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested function runs later, on whichever thread calls it —
            # it does not inherit the lexical lock context.
            self._walk(node.body, guarded, locked=False, allow_assign=allow_assign)
            return
        # Flag assignments to self.<attr> first, then scan expressions.
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                self._check_assign_target(target, guarded, locked, allow_assign)
            value = getattr(node, "value", None)
            if value is not None:
                self._check_expression(value, guarded, locked, allow_assign)
            return
        # Recurse into compound statements; check bare expressions.
        for field_name, value in ast.iter_fields(node):
            if isinstance(value, list):
                if all(isinstance(item, ast.stmt) for item in value) and value:
                    self._walk(value, guarded, locked, allow_assign)
                else:
                    for item in value:
                        if isinstance(item, ast.expr):
                            self._check_expression(item, guarded, locked, allow_assign)
                        elif isinstance(item, ast.stmt):
                            self._check_statement(item, guarded, locked, allow_assign)
                        elif isinstance(item, ast.excepthandler):
                            self._walk(item.body, guarded, locked, allow_assign)
            elif isinstance(value, ast.expr):
                self._check_expression(value, guarded, locked, allow_assign)
            elif isinstance(value, ast.stmt):
                self._check_statement(value, guarded, locked, allow_assign)

    def _check_assign_target(self, target, guarded, locked: bool, allow_assign: bool) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_assign_target(element, guarded, locked, allow_assign)
            return
        # self.<attr> = ... (possibly through a subscript, e.g. self.d[k]=v)
        attribute = target
        while isinstance(attribute, ast.Subscript):
            attribute = attribute.value
        if (
            isinstance(attribute, ast.Attribute)
            and isinstance(attribute.value, ast.Name)
            and attribute.value.id == "self"
        ):
            name = attribute.attr
            if name in guarded:
                if not locked:
                    self.report(
                        target,
                        f"write to lock-guarded attribute 'self.{name}' outside "
                        f"'with self.{LOCK_ATTR}'",
                    )
            elif name != LOCK_ATTR and not allow_assign:
                self.report(
                    target,
                    f"assignment to unregistered attribute 'self.{name}' outside "
                    "__init__ in a lock-disciplined class; register it in "
                    f"{DECLARATION} (and guard it) or set it in __init__ only",
                )
        elif isinstance(target, ast.expr):
            self._check_expression(target, guarded, locked, allow_assign)

    def _check_expression(self, node: ast.expr, guarded, locked: bool, allow_assign: bool) -> None:
        for child in ast.walk(node):
            if isinstance(child, (ast.Lambda,)):
                continue  # deferred execution; lexical lock doesn't apply anyway
            if (
                isinstance(child, ast.Attribute)
                and isinstance(child.value, ast.Name)
                and child.value.id == "self"
                and child.attr in guarded
                and not locked
            ):
                self.report(
                    child,
                    f"read of lock-guarded attribute 'self.{child.attr}' outside "
                    f"'with self.{LOCK_ATTR}'",
                )
