"""MUT009 — nondeterministic-iteration checker.

The one determinism hazard MUT003 cannot see: Python ``set`` /
``frozenset`` iteration order depends on element hashes and insertion
history, and ``os.listdir`` / ``glob`` return entries in filesystem order
— both vary across hosts, filesystems, and (for str-keyed sets) the
per-process hash seed.  A loop over either in a digest-affecting module
puts that ordering into result records, shard layout, or merge order, and
the byte-identical-digest invariant dies an unexplainable death in a
smoke job on someone else's machine.

The checker is intraprocedural and lexical: it tracks names assigned from
set-producing expressions (``set()``/``frozenset()`` calls, set literals
and comprehensions, set algebra) and OS-listing calls, and flags iteration
contexts — ``for`` loops, comprehension generators, ``list()`` /
``tuple()`` / ``enumerate()`` / ``str.join`` materialization — whose
iterable is such a value and is not wrapped in ``sorted(...)``.  Scope
mirrors MUT003 (the digest-affecting modules).  ``dict`` iteration is
deliberately out of scope: insertion order is deterministic and the tree
relies on it.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.lint.determinism import EXEMPT_FILES, SCOPE_DIRS, SCOPE_FILES
from repro.lint.framework import Checker, dotted_name

#: Calls returning filesystem listings in filesystem (arbitrary) order.
LISTING_CALLS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)

#: Set methods returning sets (algebra keeps the taint).
SET_ALGEBRA_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: Binary operators closed over sets.
SET_BINOPS = (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)

#: Builtins that materialize their iterable argument in iteration order.
MATERIALIZERS = frozenset({"list", "tuple", "enumerate"})


class NondeterministicIterationChecker(Checker):
    code = "MUT009"
    name = "nondeterministic-iteration"
    title = "Unsorted set / directory-listing iteration in digest-affecting code"
    explanation = """\
Contract (same invariant as MUT003): serial, parallel, distributed,
federated, and service-run executions of one campaign configuration
produce byte-identical result digests.  MUT003 keeps wall-clock and
ambient randomness out of the pipeline; MUT009 closes the remaining
ordering hole: `set`/`frozenset` iteration order (hash- and
insertion-history-dependent, and for str keys randomized per process
unless PYTHONHASHSEED is pinned) and `os.listdir`/`glob` filesystem order
(varies by filesystem and creation history).

A `for` loop, comprehension, `list()`/`tuple()`/`enumerate()` call, or
`".".join(...)` over either source in `sim/`, `controllers/`, the
campaign pipeline under `core/`, or the other digest-affecting packages
leaks that ordering into event schedules, result records, shard layout,
or merge order — and the digest invariant fails far from the cause.

Correct pattern: wrap the iterable in `sorted(...)` at the iteration
site (`for name in sorted(pending):`), or keep the collection a list /
dict (insertion order is deterministic and the tree relies on it).
Sets remain fine for membership tests; only their *iteration* is banned
unsorted.

Known limits (lexical, documented): taint tracks plain-name assignments
within one function; sets hidden behind attributes or returned from
helpers are not seen.  `sorted()` at the iteration site is the pattern
to standardize on either way.
"""

    @classmethod
    def applies_to(cls, relparts: tuple[str, ...]) -> bool:
        tail = tuple(relparts[-2:])
        if tail in EXEMPT_FILES:
            return False
        if tail in SCOPE_FILES:
            return True
        return bool(relparts) and relparts[0] in SCOPE_DIRS

    def __init__(self, file):
        super().__init__(file)
        #: Stack of per-scope sets of names carrying set/listing taint.
        self._scopes: list[set[str]] = [set()]

    # ------------------------------------------------------------ taint model

    def _tainted_name(self, name: str) -> bool:
        return any(name in scope for scope in self._scopes)

    def _describe(self, node: ast.expr) -> Optional[str]:
        """Why this expression iterates nondeterministically, or ``None``."""
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in ("set", "frozenset"):
                    return f"{func.id}(...)"
                if func.id == "sorted":
                    return None  # sorted() is the sanctioned fix
            dotted = dotted_name(func)
            if dotted in LISTING_CALLS:
                return f"{dotted}()"
            if (
                isinstance(func, ast.Attribute)
                and func.attr in SET_ALGEBRA_METHODS
                and self._describe(func.value) is not None
            ):
                return f"set .{func.attr}(...)"
            return None
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Name) and self._tainted_name(node.id):
            return f"{node.id!r} (a set / unsorted listing)"
        if isinstance(node, ast.BinOp) and isinstance(node.op, SET_BINOPS):
            return self._describe(node.left) or self._describe(node.right)
        return None

    # ------------------------------------------------------------- scoping

    def _visit_function(self, node) -> None:
        self._scopes.append(set())
        self.generic_visit(node)
        self._scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_function(node)

    # ---------------------------------------------------------- assignments

    def _bind(self, target: ast.expr, tainted: bool) -> None:
        if isinstance(target, ast.Name):
            self._scopes[-1].discard(target.id)
            if tainted:
                self._scopes[-1].add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, tainted)

    def visit_Assign(self, node: ast.Assign) -> None:
        tainted = self._describe(node.value) is not None
        for target in node.targets:
            self._bind(target, tainted)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._bind(node.target, self._describe(node.value) is not None)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # ``s |= other`` keeps existing taint; ``xs += [..]`` keeps none.
        self.generic_visit(node)

    # ------------------------------------------------------ iteration sites

    def _flag(self, node: ast.AST, what: str, context: str) -> None:
        self.report(
            node,
            f"{context} over {what} iterates in nondeterministic order in "
            "digest-affecting code; wrap the iterable in sorted(...)",
        )

    def visit_For(self, node: ast.For) -> None:
        what = self._describe(node.iter)
        if what is not None:
            self._flag(node.iter, what, "for-loop")
        # Loop variables bound from a tainted iterable are elements, not
        # sets; they carry no iteration-order taint of their own.
        self._bind(node.target, False)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for generator in node.generators:
            what = self._describe(generator.iter)
            if what is not None:
                self._flag(generator.iter, what, "comprehension")
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # The *result* being a set is handled at its own iteration site;
        # here only the generators matter.
        self._visit_comprehension(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in MATERIALIZERS
            and node.args
        ):
            what = self._describe(node.args[0])
            if what is not None:
                self._flag(node, what, f"{func.id}()")
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "join"
            and dotted_name(func) not in ("os.path.join", "posixpath.join", "ntpath.join")
            and node.args
        ):
            what = self._describe(node.args[0])
            if what is not None:
                self._flag(node, what, "str.join()")
        self.generic_visit(node)
