"""Interprocedural dataflow over the project call graph.

Two analyses, both deliberately simple and both memoized so the whole-tree
sweep stays cheap:

* **Banned-primitive reachability** (:class:`Reachability`): from a given
  function, can execution reach a call site matching a predicate (raw-I/O
  primitives for MUT006, blocking primitives for MUT007) through any chain
  of resolvable project calls?  The answer carries the *chain* — every hop
  with its file:line — because a finding the developer cannot trace is a
  finding they will suppress instead of fix.  Recursion is handled with an
  on-stack guard (a cycle contributes no new reachability); functions in
  exempt modules (the transport implementations — the sanctioned floor of
  the storage contract) are never descended into.

* **Parameter-mutation fixpoint** (:func:`mutated_param_set`): the set of
  ``(function, parameter_index)`` pairs whose parameter is mutated in
  place, directly (``p["x"] = v``, ``p.append(...)``) or transitively (the
  parameter is forwarded positionally to another project function that
  mutates the corresponding parameter).  This is what closes MUT001's
  known interprocedural hole: a tainted ``copy=False`` reference passed
  into a helper that mutates its argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

from repro.lint.callgraph import PROJECT, FunctionRef, ProjectGraph, Resolution
from repro.lint.framework import Suppression
from repro.lint.symbols import CallSite

#: A predicate deciding whether one call site *is* a banned primitive:
#: receives the enclosing function, the call site, and its resolution;
#: returns a short human label (``"open()"``, ``"time.sleep()"``) when
#: banned, else ``None``.  The enclosing function is what lets a checker
#: honor a justified suppression recorded *at the primitive site* — the
#: decision covers every chain that reaches it.
BanPredicate = Callable[[FunctionRef, CallSite, Resolution], Optional[str]]


def site_suppressed(
    suppressions: Mapping[str, Sequence[Suppression]],
    path: str,
    line: int,
    codes: frozenset[str],
) -> bool:
    """Whether a justified suppression naming one of ``codes`` covers the
    given site (used by graph checkers for terminal-primitive sites)."""
    for suppression in suppressions.get(path, ()):
        if not suppression.justification:
            continue
        if line in suppression.covered_lines and any(
            code in suppression.codes for code in codes
        ):
            return True
    return False


@dataclass(frozen=True)
class ChainStep:
    """One hop of a printable call chain."""

    description: str  # "resultstore.write_dicts" or the banned label
    path: str
    line: int


def render_chain(steps: tuple[ChainStep, ...]) -> str:
    """``a (f.py:3) -> b (g.py:7) -> open() (g.py:9)``"""
    return " -> ".join(
        f"{step.description} ({'/'.join(_short_path(step.path))}:{step.line})"
        for step in steps
    )


def _short_path(path: str) -> tuple[str, ...]:
    parts = tuple(part for part in path.replace("\\", "/").split("/") if part)
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return parts[index + 1 :]
    return parts[-2:] if len(parts) > 1 else parts


class Reachability:
    """Memoized "does a banned primitive lie downstream of this function?"

    One instance per (graph, predicate, exemption) combination; checkers
    construct their own.  ``chain_from(fid)`` returns the shortest-found
    chain of :class:`ChainStep` from the function's first qualifying call
    to the banned primitive, or ``None``.
    """

    def __init__(
        self,
        graph: ProjectGraph,
        banned: BanPredicate,
        exempt: Callable[[FunctionRef], bool] = lambda ref: False,
    ):
        self.graph = graph
        self.banned = banned
        self.exempt = exempt
        self._memo: dict[str, Optional[tuple[ChainStep, ...]]] = {}
        self._on_stack: set[str] = set()

    def chain_from(self, fid: str) -> Optional[tuple[ChainStep, ...]]:
        """The banned-primitive chain starting *inside* ``fid``, if any."""
        if fid in self._memo:
            return self._memo[fid]
        if fid in self._on_stack:
            return None  # a recursion cycle adds no reachability of its own
        ref = self.graph.functions.get(fid)
        if ref is None or self.exempt(ref):
            self._memo[fid] = None
            return None
        self._on_stack.add(fid)
        try:
            found: Optional[tuple[ChainStep, ...]] = None
            module = self.graph.modules[ref.module]
            for call in ref.summary.calls:
                resolution = self.graph.resolve(module, ref.summary, call)
                label = self.banned(ref, call, resolution)
                if label is not None:
                    found = (ChainStep(label, ref.path, call.line),)
                    break
                if resolution.kind == PROJECT:
                    downstream = self.chain_from(resolution.target)
                    if downstream is not None:
                        callee = self.graph.functions[resolution.target]
                        # Anchor the hop at the *call site* line in the
                        # caller, then append the callee's own chain.
                        hop = ChainStep(_qualified(callee), ref.path, call.line)
                        found = (hop, *downstream)
                        break
        finally:
            self._on_stack.discard(fid)
        # A cycle participant's result computed while its callers are on
        # the stack may be incomplete, but only in the direction of a
        # *missed* chain through the cycle itself — conservative for a
        # linter that reports chains, never for one that certifies purity.
        self._memo[fid] = found
        return found


def _qualified(ref: FunctionRef) -> str:
    module_leaf = ref.module.rsplit(".", 1)[-1]
    return f"{module_leaf}.{ref.summary.qualname}"


def call_chain_message(
    graph: ProjectGraph,
    caller: FunctionRef,
    call: CallSite,
    callee_fid: str,
    downstream: tuple[ChainStep, ...],
) -> str:
    """The rendered chain for a finding at ``call`` inside ``caller``."""
    callee = graph.functions[callee_fid]
    first = ChainStep(_qualified(callee), caller.path, call.line)
    return render_chain((first, *downstream))


# ---------------------------------------------------------------------------
# Parameter-mutation fixpoint
# ---------------------------------------------------------------------------


def _callee_param_for_arg(
    graph: ProjectGraph, resolution: Resolution, arg_position: int
) -> Optional[tuple[str, int]]:
    """Map a positional argument to the callee's parameter index.

    Bound-method and constructor calls consume the implicit ``self``
    parameter, so argument *i* lands on parameter *i + 1* there.
    """
    if resolution.kind != PROJECT:
        return None
    callee = graph.functions.get(resolution.target)
    if callee is None:
        return None
    offset = 1 if callee.summary.class_name is not None else 0
    index = arg_position + offset
    if index >= len(callee.summary.params):
        return None  # *args and arity mismatches: conservative no-map
    return resolution.target, index


def mutated_param_set(graph: ProjectGraph) -> dict[tuple[str, int], int]:
    """``{(fid, param_index): line}`` for every parameter mutated in place,
    directly or through any chain of positional forwarding."""
    mutated: dict[tuple[str, int], int] = {}
    for ref in graph.all_functions():
        for index, line in ref.summary.mutated_params:
            mutated[(ref.fid, index)] = line
    changed = True
    while changed:
        changed = False
        for ref in graph.all_functions():
            module = graph.modules[ref.module]
            for call in ref.summary.calls:
                if not call.param_args:
                    continue
                resolution = graph.resolve(module, ref.summary, call)
                for arg_position, caller_param in call.param_args:
                    mapped = _callee_param_for_arg(graph, resolution, arg_position)
                    if mapped is None or mapped not in mutated:
                        continue
                    key = (ref.fid, caller_param)
                    if key not in mutated:
                        mutated[key] = call.line
                        changed = True
    return mutated
