"""Per-file incremental cache for the lint pipeline.

Phase A of a lint run — parse, per-file checkers, suppression parsing,
and the :class:`~repro.lint.symbols.ModuleSummary` distillation — is pure
per file: its outputs depend only on that file's bytes (and the checker
code itself).  This cache persists exactly those outputs under
``.mutiny-lint-cache/`` so a warm run skips parsing entirely and pays
only for phase B (the cross-file graph analysis), keeping the CI gate
and the pre-commit loop fast as the tree grows.

Validation is two-tier: a fast path on ``(mtime_ns, size)`` — an
untouched file is a pair of ``stat`` fields, no reads — falling back to a
content SHA-1 when the stat pair moved (so ``touch`` alone does not
invalidate, and an edit under coarse mtime granularity cannot *falsely*
validate the fast path — a changed mtime merely triggers the hash check).
Entries embed :data:`CACHE_VERSION`, which must be bumped whenever
checker semantics, summary shapes, or diagnostic messages change: a
version mismatch is a miss, never an error.

Cached per file: the **raw** (pre-suppression) diagnostics of every file
checker plus hygiene findings, the parsed suppressions, and the module
summary.  Suppression filtering and graph checkers run fresh every time —
they are cheap, and caching post-filter results would couple entries to
the run's checker selection.

Failure policy: the cache is an optimization, never a correctness
dependency.  Any load problem (corrupt pickle, truncated file, foreign
class shapes) is treated as a miss; any store problem (read-only
checkout, full disk) is ignored.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass
from typing import Optional

from repro.lint.framework import Diagnostic, Suppression
from repro.lint.symbols import ModuleSummary

#: Bump on any change to checker behavior, Diagnostic/Suppression/
#: ModuleSummary shapes, or message wording — stale entries must miss.
CACHE_VERSION = 1

#: Default cache location, relative to the current working directory.
DEFAULT_CACHE_DIR = ".mutiny-lint-cache"


@dataclass
class FileEntry:
    """Everything phase A produces for one clean-parsing file."""

    cache_version: int
    sha1: str
    mtime_ns: int
    size: int
    #: Raw per-file diagnostics (file checkers + hygiene), pre-suppression.
    diagnostics: list[Diagnostic]
    suppressions: list[Suppression]
    summary: Optional[ModuleSummary]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0


def content_sha1(source_bytes: bytes) -> str:
    return hashlib.sha1(source_bytes).hexdigest()


class LintCache:
    """One cache directory; keys are absolute file paths."""

    def __init__(self, directory: str):
        self.directory = directory
        self.stats = CacheStats()

    def _entry_path(self, path: str) -> str:
        digest = hashlib.sha1(os.path.abspath(path).encode("utf-8")).hexdigest()
        return os.path.join(self.directory, f"{digest}.pickle")

    def load(self, path: str) -> Optional[FileEntry]:
        """The cached entry for ``path`` if still valid, else ``None``."""
        try:
            stat = os.stat(path)
        except OSError:
            return None
        try:
            with open(self._entry_path(path), "rb") as handle:
                entry = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError, TypeError):
            # Missing, truncated, corrupt, or written by a different code
            # shape: all are misses, never errors.
            self.stats.misses += 1
            return None
        if (
            not isinstance(entry, FileEntry)
            or entry.cache_version != CACHE_VERSION
        ):
            self.stats.misses += 1
            return None
        if entry.mtime_ns != stat.st_mtime_ns or entry.size != stat.st_size:
            # Stat moved: confirm via content hash (a bare ``touch`` should
            # not re-lint the world).
            try:
                with open(path, "rb") as handle:
                    if content_sha1(handle.read()) != entry.sha1:
                        self.stats.misses += 1
                        return None
            except OSError:
                self.stats.misses += 1
                return None
            entry.mtime_ns = stat.st_mtime_ns
            entry.size = stat.st_size
            self._write(path, entry)  # refresh the fast path
        self.stats.hits += 1
        return entry

    def store(
        self,
        path: str,
        diagnostics: list[Diagnostic],
        suppressions: list[Suppression],
        summary: Optional[ModuleSummary],
    ) -> None:
        try:
            stat = os.stat(path)
            with open(path, "rb") as handle:
                sha1 = content_sha1(handle.read())
        except OSError:
            return
        entry = FileEntry(
            cache_version=CACHE_VERSION,
            sha1=sha1,
            mtime_ns=stat.st_mtime_ns,
            size=stat.st_size,
            diagnostics=diagnostics,
            suppressions=suppressions,
            summary=summary,
        )
        self._write(path, entry)

    def _write(self, path: str, entry: FileEntry) -> None:
        entry_path = self._entry_path(path)
        temp_path = f"{entry_path}.tmp.{os.getpid()}"
        try:
            os.makedirs(self.directory, exist_ok=True)
            with open(temp_path, "wb") as handle:
                pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_path, entry_path)
        except OSError:
            try:
                os.unlink(temp_path)
            except OSError:
                pass  # best effort: the cache is an optimization only
