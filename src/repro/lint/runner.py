"""mutiny-lint runner: file discovery, checker dispatch, report assembly.

The runner is what ``repro.cli lint`` (and the tests) drive: point it at one
or more paths, it discovers ``.py`` files, computes each file's parts
relative to the ``repro`` package root (so checker path scopes work both on
the real tree and on fixture trees that mirror the layout under a temp
directory), runs every selected checker, applies inline suppressions, and
returns a :class:`LintReport`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Type

from repro.lint.determinism import DeterminismChecker
from repro.lint.exceptions import SwallowedExceptionChecker
from repro.lint.framework import (
    HYGIENE_CODE,
    Checker,
    Diagnostic,
    load_lint_file,
)
from repro.lint.informer import InformerMutationChecker
from repro.lint.locks import LockDisciplineChecker
from repro.lint.transport_purity import TransportPurityChecker

#: Every checker, in code order.  MUT000 is not a checker — it is the
#: hygiene code emitted by the framework itself (unparseable files, bad
#: suppression comments) and is documented via :data:`EXPLANATIONS`.
ALL_CHECKERS: tuple[Type[Checker], ...] = (
    InformerMutationChecker,
    TransportPurityChecker,
    DeterminismChecker,
    LockDisciplineChecker,
    SwallowedExceptionChecker,
)

HYGIENE_EXPLANATION = """\
MUT000 is mutiny-lint's own hygiene code — it reports problems with the
lint run itself rather than with the checked contracts:

  * a file that cannot be read or does not parse;
  * a suppression comment naming an unknown code, or naming MUT000 itself
    (hygiene findings cannot be suppressed — fixing the comment is always
    cheaper than silencing it);
  * a suppression with no justification.  The grammar is

        # mutiny-lint: disable=MUTnnn -- why this is safe here

    and the `-- why` part is mandatory: a suppression records a decision,
    and this linter exists precisely because undocumented decisions about
    cross-layer contracts are where orchestrators rot;
  * a comment that mentions mutiny-lint but does not match the grammar
    (usually a typo that would otherwise silently suppress nothing).

MUT000 findings cannot be suppressed and have no checker to disable: fix
the comment or the file.
"""

#: code -> long-form explanation, served by ``repro.cli lint --explain``.
EXPLANATIONS: dict[str, str] = {HYGIENE_CODE: HYGIENE_EXPLANATION}
for _checker in ALL_CHECKERS:
    EXPLANATIONS[_checker.code] = _checker.explanation

#: code -> one-line title (for listings).
TITLES: dict[str, str] = {HYGIENE_CODE: "Lint hygiene (bad suppression / unreadable file)"}
for _checker in ALL_CHECKERS:
    TITLES[_checker.code] = _checker.title

KNOWN_CODES: tuple[str, ...] = tuple(sorted(TITLES))

#: Schema version of the ``--format json`` document.  Bump only on a
#: breaking change to the document shape; tests pin this.
JSON_SCHEMA_VERSION = 1


class LintUsageError(ValueError):
    """Bad runner input (unknown code, missing path) — CLI exit 2."""


@dataclass
class LintReport:
    """Outcome of one lint run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    codes: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def to_document(self) -> dict:
        """The stable ``--format json`` document."""
        return {
            "schema_version": JSON_SCHEMA_VERSION,
            "tool": "mutiny-lint",
            "codes": list(self.codes),
            "files_checked": self.files_checked,
            "findings": [diagnostic.to_dict() for diagnostic in self.diagnostics],
            "ok": self.ok,
        }


def _discover(paths: Sequence[str]) -> list[str]:
    """Every ``.py`` file under the given files/directories, sorted."""
    found: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            found.add(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    name for name in dirnames if name != "__pycache__" and not name.startswith(".")
                )
                for filename in filenames:
                    if filename.endswith(".py"):
                        found.add(os.path.join(dirpath, filename))
        else:
            raise LintUsageError(f"no such file or directory: {path}")
    return sorted(found)


def _relparts(path: str) -> tuple[str, ...]:
    """Path parts relative to the ``repro`` package root.

    ``.../src/repro/core/distributed.py`` → ``("core", "distributed.py")``.
    The *last* ``repro`` segment wins, so fixture trees that mirror the
    package layout under ``/tmp/.../repro/...`` scope identically.  A path
    with no ``repro`` segment falls back to its own parts (scoped checkers
    then simply don't apply).
    """
    parts = tuple(part for part in os.path.normpath(path).split(os.sep) if part)
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return parts[index + 1 :]
    return parts


def select_codes(codes: Optional[Iterable[str]]) -> tuple[str, ...]:
    """Validate and normalize a ``--codes`` selection (None = all)."""
    if codes is None:
        return KNOWN_CODES
    selected = []
    for code in codes:
        normalized = code.strip().upper()
        if not normalized:
            continue
        if normalized not in TITLES:
            raise LintUsageError(
                f"unknown code {normalized!r} (known: {', '.join(KNOWN_CODES)})"
            )
        selected.append(normalized)
    if not selected:
        raise LintUsageError("--codes selected nothing")
    return tuple(dict.fromkeys(selected))


def lint_paths(
    paths: Sequence[str], codes: Optional[Iterable[str]] = None
) -> LintReport:
    """Lint the given files/directories with the selected checkers."""
    selected = select_codes(codes)
    checkers = [checker for checker in ALL_CHECKERS if checker.code in selected]
    report = LintReport(codes=selected)
    for path in _discover(paths):
        relparts = _relparts(path)
        lint_file, hygiene = load_lint_file(path, relparts, KNOWN_CODES)
        report.files_checked += 1
        if HYGIENE_CODE in selected:
            report.diagnostics.extend(hygiene)
        if lint_file is None:
            continue
        for checker_class in checkers:
            if not checker_class.applies_to(relparts):
                continue
            for diagnostic in checker_class(lint_file).run():
                if not lint_file.suppressed(diagnostic):
                    report.diagnostics.append(diagnostic)
    report.diagnostics.sort()
    return report
