"""mutiny-lint runner: discovery, two-phase checker dispatch, report assembly.

The runner is what ``repro.cli lint`` (and the tests) drive.  Since PR 10
a run has two phases:

* **Phase A (per file, cacheable)** — parse, run every in-scope *file*
  checker (MUT001–MUT005, MUT009), parse suppressions, and distill the
  module into a :class:`~repro.lint.symbols.ModuleSummary`.  All of it
  depends only on the file's bytes, so results persist in the incremental
  cache (:mod:`repro.lint.cache`) and a warm run skips parsing entirely.

* **Phase B (whole program)** — build the project call graph from the
  summaries and run the *graph* checkers (MUT006–MUT008 plus MUT001's
  interprocedural escape analysis).  Cheap relative to parsing, and
  inherently cross-file, so it runs fresh every time.

Inline suppressions apply to both phases (a graph finding lands on a
concrete line like any other), and the optional findings baseline
(:mod:`repro.lint.baseline`) splits the result into new-vs-recorded
findings with a stale-entry ratchet.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Type

from repro.lint import baseline as baseline_mod
from repro.lint.cache import LintCache
from repro.lint.callgraph import build_graph
from repro.lint.concurrency import BlockingUnderLockChecker, LockOrderChecker
from repro.lint.determinism import DeterminismChecker
from repro.lint.exceptions import SwallowedExceptionChecker
from repro.lint.framework import (
    HYGIENE_CODE,
    Checker,
    Diagnostic,
    Suppression,
    is_suppressed,
    load_lint_file,
)
from repro.lint.informer import InformerMutationChecker
from repro.lint.iteration import NondeterministicIterationChecker
from repro.lint.locks import LockDisciplineChecker
from repro.lint.purity_graph import (
    GraphChecker,
    InformerEscapeChecker,
    InterproceduralPurityChecker,
)
from repro.lint.symbols import ModuleSummary, index_module
from repro.lint.transport_purity import TransportPurityChecker

#: Every per-file checker, in code order.  MUT000 is not a checker — it is
#: the hygiene code emitted by the framework itself (unparseable files, bad
#: suppression comments) and is documented via :data:`EXPLANATIONS`.
ALL_CHECKERS: tuple[Type[Checker], ...] = (
    InformerMutationChecker,
    TransportPurityChecker,
    DeterminismChecker,
    LockDisciplineChecker,
    SwallowedExceptionChecker,
    NondeterministicIterationChecker,
)

#: Every whole-program checker (phase B).  InformerEscapeChecker shares
#: MUT001 with the file checker — same contract, interprocedural lens.
GRAPH_CHECKERS: tuple[Type[GraphChecker], ...] = (
    InterproceduralPurityChecker,
    BlockingUnderLockChecker,
    LockOrderChecker,
    InformerEscapeChecker,
)

HYGIENE_EXPLANATION = """\
MUT000 is mutiny-lint's own hygiene code — it reports problems with the
lint run itself rather than with the checked contracts:

  * a file that cannot be read or does not parse;
  * a suppression comment naming an unknown code, or naming MUT000 itself
    (hygiene findings cannot be suppressed — fixing the comment is always
    cheaper than silencing it);
  * a suppression with no justification.  The grammar is

        # mutiny-lint: disable=MUTnnn -- why this is safe here

    and the `-- why` part is mandatory: a suppression records a decision,
    and this linter exists precisely because undocumented decisions about
    cross-layer contracts are where orchestrators rot;
  * a comment that mentions mutiny-lint but does not match the grammar
    (usually a typo that would otherwise silently suppress nothing).

MUT000 findings cannot be suppressed and have no checker to disable: fix
the comment or the file.
"""

#: code -> long-form explanation, served by ``repro.cli lint --explain``.
EXPLANATIONS: dict[str, str] = {HYGIENE_CODE: HYGIENE_EXPLANATION}
#: code -> one-line title (for listings).
TITLES: dict[str, str] = {HYGIENE_CODE: "Lint hygiene (bad suppression / unreadable file)"}
for _checker in (*ALL_CHECKERS, *GRAPH_CHECKERS):
    if _checker.title:  # InformerEscapeChecker defers MUT001's docs
        EXPLANATIONS[_checker.code] = _checker.explanation
        TITLES[_checker.code] = _checker.title

KNOWN_CODES: tuple[str, ...] = tuple(sorted(TITLES))

#: Schema version of the ``--format json`` document.  Bump only on a
#: breaking change to the document shape; tests pin this.  The PR 10
#: baseline/cache fields are additive.
JSON_SCHEMA_VERSION = 1


class LintUsageError(ValueError):
    """Bad runner input (unknown code, missing path) — CLI exit 2."""


@dataclass
class LintReport:
    """Outcome of one lint run.

    With a baseline applied, :attr:`diagnostics` holds only the findings
    that *fail* the run (not matched by a baseline entry); matched ones
    are counted in :attr:`baselined` and stale baseline entries — the
    ratchet — in :attr:`stale_baseline`.
    """

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    codes: tuple[str, ...] = ()
    baselined: int = 0
    stale_baseline: list[tuple[str, str, str]] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def ok(self) -> bool:
        return not self.diagnostics and not self.stale_baseline

    def to_document(self) -> dict:
        """The stable ``--format json`` document."""
        return {
            "schema_version": JSON_SCHEMA_VERSION,
            "tool": "mutiny-lint",
            "codes": list(self.codes),
            "files_checked": self.files_checked,
            "findings": [diagnostic.to_dict() for diagnostic in self.diagnostics],
            "baselined": self.baselined,
            "stale_baseline": [
                {"file": file, "code": code, "message": message}
                for file, code, message in self.stale_baseline
            ],
            "ok": self.ok,
        }


def _discover(paths: Sequence[str]) -> list[str]:
    """Every ``.py`` file under the given files/directories, sorted.

    Symlink policy: directory symlinks are pruned from the walk (a link
    pointing back up the tree would loop, and a linked subtree would
    duplicate every finding under two spellings), and the final list is
    deduplicated by resolved real path — a symlinked file, or the same
    tree reached through two of the given paths, lints exactly once under
    its first (sorted) display path.
    """
    candidates: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            candidates.add(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    name
                    for name in dirnames
                    if name != "__pycache__"
                    and not name.startswith(".")
                    and not os.path.islink(os.path.join(dirpath, name))
                )
                for filename in filenames:
                    if filename.endswith(".py"):
                        candidates.add(os.path.join(dirpath, filename))
        else:
            raise LintUsageError(f"no such file or directory: {path}")
    unique: dict[str, str] = {}
    for display in sorted(candidates):
        unique.setdefault(os.path.realpath(display), display)
    return sorted(unique.values())


def _relparts(path: str) -> tuple[str, ...]:
    """Path parts relative to the ``repro`` package root.

    ``.../src/repro/core/distributed.py`` → ``("core", "distributed.py")``.
    The *last* ``repro`` segment wins, so fixture trees that mirror the
    package layout under ``/tmp/.../repro/...`` scope identically.  A path
    with no ``repro`` segment falls back to its own parts (scoped checkers
    then simply don't apply).
    """
    parts = tuple(part for part in os.path.normpath(path).split(os.sep) if part)
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return parts[index + 1 :]
    return parts


def select_codes(codes: Optional[Iterable[str]]) -> tuple[str, ...]:
    """Validate and normalize a ``--codes`` selection (None = all)."""
    if codes is None:
        return KNOWN_CODES
    selected = []
    for code in codes:
        normalized = code.strip().upper()
        if not normalized:
            continue
        if normalized not in TITLES:
            raise LintUsageError(
                f"unknown code {normalized!r} (known: {', '.join(KNOWN_CODES)})"
            )
        selected.append(normalized)
    if not selected:
        raise LintUsageError("--codes selected nothing")
    return tuple(dict.fromkeys(selected))


def _phase_a(
    path: str,
    relparts: tuple[str, ...],
    cache: Optional[LintCache],
) -> tuple[list[Diagnostic], list[Suppression], Optional[ModuleSummary]]:
    """Parse + file checkers + summary for one file, cache-aware.

    Raw (pre-suppression) diagnostics of *every* in-scope file checker are
    produced regardless of the run's ``--codes`` selection, so one cache
    entry serves every selection.
    """
    if cache is not None:
        entry = cache.load(path)
        if entry is not None:
            return entry.diagnostics, entry.suppressions, entry.summary
    lint_file, hygiene = load_lint_file(path, relparts, KNOWN_CODES)
    raw: list[Diagnostic] = list(hygiene)
    suppressions: list[Suppression] = []
    summary: Optional[ModuleSummary] = None
    if lint_file is not None:
        suppressions = lint_file.suppressions
        for checker_class in ALL_CHECKERS:
            if checker_class.applies_to(relparts):
                raw.extend(checker_class(lint_file).run())
        summary = index_module(lint_file)
    if cache is not None:
        cache.store(path, raw, suppressions, summary)
    return raw, suppressions, summary


def lint_paths(
    paths: Sequence[str],
    codes: Optional[Iterable[str]] = None,
    *,
    cache_dir: Optional[str] = None,
    baseline_entries: Optional[Sequence[tuple[str, str, str]]] = None,
) -> LintReport:
    """Lint the given files/directories with the selected checkers.

    ``cache_dir`` enables the per-file incremental cache; ``baseline_entries``
    (parsed from ``lint-baseline.json``) filters the result down to
    new-vs-baselined findings with the stale-entry ratchet.
    """
    selected = select_codes(codes)
    cache = LintCache(cache_dir) if cache_dir is not None else None
    report = LintReport(codes=selected)
    collected: list[Diagnostic] = []
    summaries: list[ModuleSummary] = []
    suppressions_by_path: dict[str, list[Suppression]] = {}
    for path in _discover(paths):
        relparts = _relparts(path)
        raw, suppressions, summary = _phase_a(path, relparts, cache)
        report.files_checked += 1
        suppressions_by_path[path] = suppressions
        if summary is not None:
            summaries.append(summary)
        for diagnostic in raw:
            if diagnostic.code not in selected:
                continue
            if diagnostic.code != HYGIENE_CODE and is_suppressed(
                suppressions, diagnostic
            ):
                continue
            collected.append(diagnostic)
    graph_checkers = [
        checker for checker in GRAPH_CHECKERS if checker.code in selected
    ]
    if graph_checkers and summaries:
        graph = build_graph(summaries)
        for graph_checker in graph_checkers:
            for diagnostic in graph_checker().run(graph, suppressions_by_path):
                if not is_suppressed(
                    suppressions_by_path.get(diagnostic.path, []), diagnostic
                ):
                    collected.append(diagnostic)
    collected.sort()
    if baseline_entries is not None:
        applied = baseline_mod.apply(collected, baseline_entries)
        report.diagnostics = applied.new
        report.baselined = len(applied.matched)
        report.stale_baseline = applied.stale
    else:
        report.diagnostics = collected
    if cache is not None:
        report.cache_hits = cache.stats.hits
        report.cache_misses = cache.stats.misses
    return report
