"""Cluster assembly.

Wires the substrates into a running simulated cluster equivalent to the
paper's testbed: one (or three) control-plane nodes, four worker nodes, the
default system workloads (network-manager DaemonSet, coreDNS Deployment and
Service), and all component loops started.
"""

from repro.cluster.cluster import Cluster, ClusterConfig

__all__ = ["Cluster", "ClusterConfig"]
