"""A complete simulated Kubernetes cluster.

The default configuration mirrors the paper's experimental setup (§V-A):
one control-plane node and four worker nodes, each with 8 CPUs and 4 GiB of
memory, a flannel-like network manager deployed as a DaemonSet, coreDNS
deployed as a two-replica Deployment, and the default resiliency strategies
(leader election, heartbeats, eviction timeouts, restart backoff, rolling
update bounds) enabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apiserver.admission import AdmissionChain
from repro.apiserver.apiserver import APIServer
from repro.apiserver.client import APIClient
from repro.controllers.manager import ControllerManager
from repro.etcd.raft import RaftGroup
from repro.etcd.store import EtcdStore
from repro.kubelet.kubelet import Kubelet
from repro.monitoring.metrics import MetricsCollector
from repro.network.network import NETWORK_CONFIGMAP, ClusterNetwork
from repro.objects.kinds import (
    PRIORITY_SYSTEM_CLUSTER_CRITICAL,
    make_configmap,
    make_container,
    make_daemonset,
    make_deployment,
    make_namespace,
    make_node,
    make_service,
)
from repro.objects.meta import reset_uid_counter
from repro.scheduler.scheduler import Scheduler
from repro.sim.engine import Simulation
from repro.sim.rng import DeterministicRNG


@dataclass
class ClusterConfig:
    """Parameters of the simulated cluster."""

    #: Number of worker nodes (the paper uses 4, one reserved for monitoring).
    worker_nodes: int = 4
    #: Number of control-plane nodes (1 by default, 3 for the HA rerun).
    control_plane_nodes: int = 1
    #: Node size (the paper's VMs: 8 CPUs, 4 GiB RAM).
    node_cpu: str = "8"
    node_memory: str = "4Gi"
    max_pods_per_node: int = 110
    #: Data-store quota; small enough that runaway replication fills it.
    etcd_quota_bytes: int = EtcdStore.DEFAULT_QUOTA_BYTES
    #: Seconds a NotReady node keeps its pods before eviction.
    pod_eviction_timeout: float = 60.0
    #: Seed for all stochastic behaviour in the simulation.
    seed: int = 0
    #: Number of coreDNS replicas.
    dns_replicas: int = 2
    #: Serve Apiserver reads from its watch cache (Kubernetes default).
    apiserver_cache: bool = True


class Cluster:
    """A running simulated cluster."""

    def __init__(self, config: Optional[ClusterConfig] = None):
        self.config = config if config is not None else ClusterConfig()
        reset_uid_counter()
        self.sim = Simulation(rng=DeterministicRNG(self.config.seed))
        self.store = EtcdStore(quota_bytes=self.config.etcd_quota_bytes)
        member_names = [f"etcd-{index}" for index in range(self.config.control_plane_nodes)]
        self.raft = RaftGroup(member_names)
        self.apiserver = APIServer(
            self.sim,
            self.store,
            raft=self.raft,
            admission=AdmissionChain(),
            serve_from_cache=self.config.apiserver_cache,
        )
        self.kcm = ControllerManager(
            self.sim,
            self.apiserver,
            identity="kcm-0",
            eviction_timeout=self.config.pod_eviction_timeout,
        )
        self.scheduler = Scheduler(self.sim, self.apiserver, identity="scheduler-0")
        self.network = ClusterNetwork(self.sim, self.apiserver)
        self.metrics = MetricsCollector(self.sim, self.apiserver)
        self.failure_registry: dict = {}
        self.kubelets: list[Kubelet] = []
        self.node_names: list[str] = []
        self._booted = False

        self._admin = APIClient(self.apiserver, component="cluster-admin")

    # ------------------------------------------------------------------- boot

    def boot(self, stabilization_seconds: float = 30.0) -> None:
        """Create system objects, start all component loops, and let the
        cluster reach a steady state."""
        if self._booted:
            raise RuntimeError("cluster already booted")
        self._booted = True

        self._create_namespaces()
        self._create_nodes()
        self._create_system_workloads()

        self.kcm.start()
        self.scheduler.start()
        self.network.start()
        self.metrics.start()
        for kubelet in self.kubelets:
            kubelet.start()

        self.sim.run_for(stabilization_seconds)

    def _create_namespaces(self) -> None:
        for name in ("default", "kube-system", "kube-node-lease", "kube-public"):
            self._admin.create("Namespace", make_namespace(name))

    def _create_nodes(self) -> None:
        index = 0
        for cp_index in range(self.config.control_plane_nodes):
            name = "control-plane" if cp_index == 0 else f"control-plane-{cp_index + 1}"
            self._register_node(name, index, role="control-plane")
            index += 1
        for worker_index in range(self.config.worker_nodes):
            name = f"worker-{worker_index + 1}"
            self._register_node(name, index, role="worker")
            index += 1

    def _register_node(self, name: str, index: int, role: str) -> None:
        node = make_node(
            name,
            cpu=self.config.node_cpu,
            memory=self.config.node_memory,
            max_pods=self.config.max_pods_per_node,
            role=role,
            pod_cidr=f"10.244.{index}.0/24",
        )
        self._admin.create("Node", node)
        kubelet = Kubelet(
            self.sim,
            self.apiserver,
            node_name=name,
            node_index=index,
            failure_registry=self.failure_registry,
        )
        self.kubelets.append(kubelet)
        self.node_names.append(name)

    def _create_system_workloads(self) -> None:
        # Network manager (flannel-like) configuration and DaemonSet.
        self._admin.create(
            "ConfigMap",
            make_configmap(
                NETWORK_CONFIGMAP,
                namespace="kube-system",
                data={"network": "10.244.0.0/16", "backend": "vxlan"},
            ),
        )
        network_manager = make_daemonset(
            "kube-network-manager",
            namespace="kube-system",
            labels={"app": "kube-network-manager"},
            containers=[
                make_container(
                    name="network-manager",
                    image="repro/network-manager:1.1.2",
                    cpu_request="100m",
                    memory_request="64Mi",
                )
            ],
        )
        self._admin.create("DaemonSet", network_manager)

        # coreDNS Deployment and Service.
        dns = make_deployment(
            "coredns",
            namespace="kube-system",
            replicas=self.config.dns_replicas,
            labels={"k8s-app": "kube-dns"},
            containers=[
                make_container(
                    name="coredns",
                    image="repro/coredns:1.10",
                    cpu_request="100m",
                    memory_request="70Mi",
                    port=53,
                )
            ],
        )
        dns["spec"]["template"]["spec"]["priority"] = PRIORITY_SYSTEM_CLUSTER_CRITICAL
        self._admin.create("Deployment", dns)
        self._admin.create(
            "Service",
            make_service(
                "kube-dns",
                namespace="kube-system",
                selector={"k8s-app": "kube-dns"},
                port=53,
                target_port=53,
                cluster_ip="10.96.0.10",
            ),
        )

    # -------------------------------------------------------------- accessors

    @property
    def client(self) -> APIClient:
        """An administrative API client (the cluster operator's kubectl)."""
        return self._admin

    def user_client(self, name: str = "user") -> APIClient:
        """Return an API client acting as a cluster user (kbench)."""
        return APIClient(self.apiserver, component=name)

    def worker_node_names(self) -> list[str]:
        """Names of the worker nodes."""
        return [name for name in self.node_names if name.startswith("worker-")]

    def kubelet_for(self, node_name: str) -> Optional[Kubelet]:
        """Return the kubelet running on the given node."""
        for kubelet in self.kubelets:
            if kubelet.node_name == node_name:
                return kubelet
        return None

    def run_for(self, seconds: float, max_events: Optional[int] = None) -> None:
        """Advance the simulation by the given number of seconds."""
        self.sim.run_for(seconds, max_events=max_events)

    def stats(self) -> dict:
        """Aggregate statistics from every component."""
        return {
            "time": self.sim.now,
            "store": self.store.stats(),
            "raft": self.raft.stats(),
            "apiserver": self.apiserver.stats(),
            "kcm": self.kcm.stats(),
            "scheduler": self.scheduler.stats(),
            "network": self.network.stats(),
            "kubelets": [kubelet.stats() for kubelet in self.kubelets],
        }
