"""Mutiny: a reproduction of "Mutiny! How does Kubernetes fail, and what can
we do about it?" (DSN 2024).

The package is organised in two layers:

* substrates — a discrete-event simulated Kubernetes cluster
  (:mod:`repro.sim`, :mod:`repro.etcd`, :mod:`repro.apiserver`,
  :mod:`repro.controllers`, :mod:`repro.scheduler`, :mod:`repro.kubelet`,
  :mod:`repro.network`, :mod:`repro.cluster`, :mod:`repro.workloads`,
  :mod:`repro.monitoring`, :mod:`repro.serialization`,
  :mod:`repro.objects`);
* core — the paper's contribution (:mod:`repro.core`): the Mutiny
  injector, the fault/error injection campaign manager, the failure
  classifiers, the field-failure-data-analysis dataset and the analysis
  and reporting utilities.

The most convenient entry points are re-exported here.
"""

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.core.campaign import Campaign, CampaignConfig, CampaignResult
from repro.core.classification import ClientFailure, OrchestratorFailure
from repro.core.experiment import ExperimentResult, ExperimentRunner
from repro.core.injector import FaultSpec, FaultType, InjectionChannel, MutinyInjector
from repro.core.parallel import CampaignExecutor, ExperimentTask
from repro.core.resultstore import ShardedResultStore, StoredResults
from repro.workloads.workload import WorkloadKind

__all__ = [
    "Campaign",
    "CampaignConfig",
    "CampaignExecutor",
    "CampaignResult",
    "ExperimentTask",
    "ClientFailure",
    "Cluster",
    "ClusterConfig",
    "ExperimentResult",
    "ExperimentRunner",
    "FaultSpec",
    "FaultType",
    "InjectionChannel",
    "MutinyInjector",
    "OrchestratorFailure",
    "ShardedResultStore",
    "StoredResults",
    "WorkloadKind",
]

__version__ = "1.0.0"
