"""Command-line interface for running Mutiny campaigns.

Usage::

    python -m repro.cli campaign [--workers N] [--max-experiments M]
                                 [--results-dir DIR | --checkpoint FILE]
                                 [--backend {local,distributed}]
                                 [--tables] [--json FILE]
    python -m repro.cli worker --results-dir DIR [--worker-id ID]
                               [--lease-ttl S] [--max-slices N]
    python -m repro.cli propagation [--workers N] [--fields-per-component K]
    python -m repro.cli profile [--max-experiments M] [--top N] [--output FILE]
    python -m repro.cli inspect RESULTS_DIR [--json FILE]
    python -m repro.cli federate DEST SOURCE [SOURCE ...]
    python -m repro.cli autofederate DEST SOURCE [SOURCE ...] [--timeout S]
    python -m repro.cli objstore [--host H] [--port P] [--max-page N]
    python -m repro.cli serve --state DIR [--port P] [--max-campaigns N]
    python -m repro.cli submit --server URL --results-dir DIR [--wait]

or, after ``pip install -e .``, via the ``mutiny-campaign`` console script.

``campaign`` runs the §IV-C injection campaign (golden baselines, field
recording, generation, execution, classification) through the parallel
:class:`repro.core.parallel.CampaignExecutor` and prints the paper's tables;
``propagation`` runs the Table VI component→Apiserver experiments.  With
``--results-dir`` the workers stream every finished batch into a sharded
gzip-JSONL result store and a rerun of the same configuration resumes from
the completed shards (use this for paper-scale campaigns; ``--checkpoint``
is the legacy monolithic pickle).

``campaign --backend distributed`` turns this process into the coordinator
of a multi-host campaign: it publishes the frozen plan into the (shared)
``--results-dir`` and folds the shards streamed in by any number of
``worker`` processes — run one per host sharing the directory — into the
same merged result a local run produces.  ``inspect`` summarizes an
existing result store (including per-worker slice provenance and
outstanding leases of a distributed run) without running anything.

Everywhere a results dir is accepted, the store root may also be an
``objstore://host:port/bucket`` URL: the store then speaks S3-style
conditional HTTP to an object store instead of a shared filesystem, which
frees distributed workers from needing any common mount.  ``objstore`` runs
the local emulation server behind that scheme; ``federate`` merges several
stores of the *same* campaign (any mix of transports) into one store whose
digest is byte-identical to a single serial run, and ``autofederate`` is
its watching form: it polls several stores (even ones their workers haven't
created yet) and folds newly completed experiments into the destination
until the campaign's full plan is there.

``profile`` runs a reduced campaign serially under cProfile together with
the hot-path counters of :mod:`repro.hotpath` — per-experiment encode /
decode / validation / watch-dispatch counts and cache hit rates next to the
functions the wall-clock actually went to (see ``docs/PERFORMANCE.md``).

``serve`` runs the campaign *service*: a stateless HTTP control plane whose
``POST /v1/campaigns`` accepts the same declarative ``CampaignSpec``
document the ``campaign``/``submit`` flags build (one validation path for
every surface), executes campaigns on background threads under a
concurrent-campaign quota, and — because the only state it keeps is a tiny
index in its transport-backed ``--state`` store — rehydrates and resumes
every incomplete campaign after a restart.  ``submit`` is the thin client:
flags → spec → POST, with ``--wait`` polling live progress through service
restarts.  ``GET /v1/campaigns/{id}`` serves the byte-identical document
``inspect --json`` writes.

Very large campaigns stress the store path itself; two knobs keep it flat:
object-store listings paginate transparently (server ``--max-page``, client
``MUTINY_OBJSTORE_PAGE``), and ``--shard-batch N`` on ``campaign``/``worker``
coalesces N finished batches into one stored shard object via conditional
appends — same results, same digests, 1/N the objects.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Optional

from repro.core.campaign import Campaign, CampaignConfig, CampaignResult
from repro.core.distributed import (
    DistributedTimeoutError,
    DistributedWorker,
    render_provenance,
)
from repro.core.report import (
    document_to_bytes,
    render_campaign_summary,
    render_critical_fields,
    render_figure6,
    render_figure7,
    render_store_summary,
    render_table3,
    render_table4,
    render_table5,
    render_table6,
    store_document,
)
from repro.core.resultstore import ResultStoreMismatchError, ShardedResultStore
from repro.core.transport import TransportError, resolve_store_url
from repro.lint import (
    DEFAULT_CACHE_DIR,
    EXPLANATIONS,
    KNOWN_CODES,
    TITLES,
    BaselineError,
    LintUsageError,
    lint_paths,
)
from repro.lint import baseline as lint_baseline
from repro.service.client import ServiceClient, ServiceError
from repro.service.handle import CampaignHandle
from repro.service.spec import CampaignSpec, SpecError
from repro.workloads.workload import WorkloadKind

_WORKLOADS = {kind.value: kind for kind in WorkloadKind}

#: Components the propagation experiments know how to hook.  A bare
#: "kubelet" targets every kubelet; "kubelet-<node>" pins one node's kubelet.
_COMPONENTS = ("kube-controller-manager", "kube-scheduler", "kubelet")


def _parse_workloads(text: str) -> tuple[WorkloadKind, ...]:
    kinds = []
    for name in text.split(","):
        name = name.strip()
        if not name:
            continue
        if name not in _WORKLOADS:
            raise argparse.ArgumentTypeError(
                f"unknown workload {name!r} (choose from {', '.join(sorted(_WORKLOADS))})"
            )
        kinds.append(_WORKLOADS[name])
    if not kinds:
        raise argparse.ArgumentTypeError("at least one workload is required")
    return tuple(kinds)


def _parse_components(text: str) -> tuple[str, ...]:
    names = []
    for name in text.split(","):
        name = name.strip()
        if not name:
            continue
        if name not in _COMPONENTS and not name.startswith("kubelet-"):
            raise argparse.ArgumentTypeError(
                f"unknown component {name!r} (choose from {', '.join(_COMPONENTS)}, "
                "or kubelet-<node>)"
            )
        names.append(name)
    if not names:
        raise argparse.ArgumentTypeError("at least one component is required")
    return tuple(names)


def _positive_int(text: str) -> int:
    """Reject non-integers and values < 1 with a message naming the input.

    Applied uniformly to every count-like option (``--workers``,
    ``--chunk-size``, ``--golden-runs``, …): a worker count or chunk size
    below 1 is meaningless and silently clamping it would hide the typo.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid value {text!r}: expected an integer >= 1"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"invalid value {text!r}: must be an integer >= 1"
        )
    return value


def _non_negative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid value {text!r}: expected an integer >= 0"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"invalid value {text!r}: must be an integer >= 0"
        )
    return value


def _positive_float(text: str) -> float:
    """Reject non-numbers and values <= 0, naming the input (durations)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid value {text!r}: expected a number > 0"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"invalid value {text!r}: must be > 0")
    return value


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workloads",
        type=_parse_workloads,
        default=tuple(WorkloadKind),
        metavar="LIST",
        help="comma-separated workloads to run (default: deploy,scale,failover)",
    )
    parser.add_argument("--seed", type=int, default=7, help="campaign seed (default: 7)")
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="worker processes (default: one per CPU; 1 = serial)",
    )
    parser.add_argument(
        "--chunk-size",
        type=_positive_int,
        default=None,
        metavar="K",
        help="experiments per worker batch (default: sized automatically)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the progress lines on stderr"
    )


def _add_spec_arguments(parser: argparse.ArgumentParser, with_checkpoint: bool) -> None:
    """Flags mapping 1:1 onto :class:`CampaignSpec` fields.

    Shared by ``campaign`` (which runs the spec locally) and ``submit``
    (which POSTs it to a service), so both surfaces accept the identical
    vocabulary and neither re-parses anything the spec validates.
    """
    _add_common_arguments(parser)
    parser.add_argument(
        "--golden-runs",
        type=_positive_int,
        default=2,
        help="golden runs per workload used for the baseline (default: 2)",
    )
    parser.add_argument(
        "--max-experiments",
        type=_non_negative_int,
        default=60,
        metavar="M",
        help="experiments per workload, 0 = the full generated campaign (default: 60)",
    )
    results_dir_help = (
        "stream results into a sharded gzip-JSONL store under DIR — a "
        "directory or an objstore://host:port/bucket URL; a rerun of the "
        "same configuration resumes from the completed shards (memory "
        "stays bounded by one batch — use for paper-scale campaigns)"
    )
    if with_checkpoint:
        persistence = parser.add_mutually_exclusive_group()
        persistence.add_argument(
            "--checkpoint",
            metavar="FILE",
            default=None,
            help="persist results after every batch into a monolithic pickle and "
            "resume from FILE if it exists (legacy; prefer --results-dir)",
        )
        persistence.add_argument(
            "--results-dir", metavar="DIR", default=None, help=results_dir_help
        )
    else:
        parser.add_argument(
            "--results-dir",
            metavar="DIR",
            required=True,
            help=results_dir_help
            + " (required: service campaigns live in a transport-backed store)",
        )
    parser.add_argument(
        "--backend",
        choices=("local", "distributed"),
        default="local",
        help="execution backend: 'local' shards across a process pool; "
        "'distributed' makes the running process the coordinator of worker "
        "processes sharing --results-dir (default: local)",
    )
    parser.add_argument(
        "--slice-size",
        type=_positive_int,
        default=None,
        metavar="K",
        help="distributed: plan indexes per leased worker slice "
        "(default: plan split into 8 slices)",
    )
    parser.add_argument(
        "--poll-interval",
        type=_positive_float,
        default=0.5,
        metavar="S",
        help="seconds between coordinator progress scans (and, for submit "
        "--wait, between status polls) (default: 0.5)",
    )
    parser.add_argument(
        "--coordinator-timeout",
        type=_positive_float,
        default=None,
        metavar="S",
        help="distributed: fail if the campaign is incomplete after S seconds "
        "(default: wait forever)",
    )
    parser.add_argument(
        "--shard-batch",
        type=_positive_int,
        default=1,
        metavar="N",
        help="finished batches coalesced per stored shard object when "
        "streaming into --results-dir (conditional appends; same results "
        "and digests, 1/N the stored objects; with --backend distributed "
        "the value is published in the plan and inherited by every worker "
        "that doesn't set its own; default: 1)",
    )


def _make_config(args: argparse.Namespace, max_experiments: Optional[int]) -> CampaignConfig:
    return CampaignConfig(
        workloads=args.workloads,
        golden_runs=getattr(args, "golden_runs", 2),
        max_experiments_per_workload=max_experiments,
        seed=args.seed,
        workers=args.workers,
        chunk_size=args.chunk_size,
        shard_batch=getattr(args, "shard_batch", 1),
    )


def _progress_printer(quiet: bool, started_at: float):
    if quiet:
        return None

    def progress(done: int, total: int) -> None:
        elapsed = time.monotonic() - started_at
        print(f"[{done}/{total}] experiments done ({elapsed:.1f}s)", file=sys.stderr)

    return progress


def _cmd_campaign(args: argparse.Namespace) -> int:
    # The CLI is a thin client of the same programmatic API the HTTP
    # service speaks: flags become a CampaignSpec (the one validation
    # path), the spec becomes a CampaignHandle, and the handle runs the
    # engine.  SpecError surfaces through main()'s shared handler.
    if args.results_dir:
        args.results_dir = resolve_store_url(args.results_dir, option="--results-dir")
    spec = CampaignSpec.from_cli_args(args)
    handle = CampaignHandle(spec)
    result = handle.run(progress=_progress_printer(args.quiet, time.monotonic()))
    print(render_campaign_summary(result))
    if args.tables:
        for text in (
            render_table4(result),
            render_table5(result),
            render_table3(result),
            render_figure6(result.results),
            render_figure7(result.results),
            render_critical_fields(result.results),
        ):
            print()
            print(text)
    if args.json:
        payload = {
            "experiments": result.total_experiments(),
            "activation_rate": result.activation_rate(),
            "classification_counts": result.classification_counts(),
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"\nwrote {args.json}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    """Summarize a sharded result store without running any experiment."""
    root = resolve_store_url(args.results_dir, option="RESULTS_DIR")
    store = ShardedResultStore(root)
    if not store.has_manifest():
        print(
            f"error: {root!r} is not a result store "
            "(no MANIFEST.json); point inspect at a --results-dir store",
            file=sys.stderr,
        )
        return 2
    # One tally pass and one digest pass over the shards, shared between the
    # rendered summary and the JSON payload.
    campaign = CampaignResult(results=store.all_results())
    digest = store.results_digest()
    print(render_store_summary(store, include_layout=True, campaign=campaign, digest=digest))
    provenance = render_provenance(root)
    if provenance:
        print()
        print(provenance)
    if args.json:
        # The schema-versioned canonical document — the service's
        # GET /v1/campaigns/{id} serves these exact bytes for the same
        # store, so the two surfaces are diffable against each other.
        document = store_document(store, campaign=campaign, digest=digest)
        with open(args.json, "wb") as handle:
            handle.write(document_to_bytes(document))
        print(f"\nwrote {args.json}")
    return 0


def _worker_log_printer(quiet: bool):
    if quiet:
        return None

    def progress(message: str) -> None:
        print(message, file=sys.stderr)

    return progress


def _cmd_worker(args: argparse.Namespace) -> int:
    """Run one distributed campaign worker against a shared result store."""
    worker = DistributedWorker(
        resolve_store_url(args.results_dir, option="--results-dir"),
        worker_id=args.worker_id,
        workers=args.workers if args.workers is not None else 1,
        chunk_size=args.chunk_size,
        shard_batch=args.shard_batch,
        lease_ttl=args.lease_ttl,
        heartbeat_interval=args.heartbeat,
        poll_interval=args.poll_interval,
        wait_timeout=args.wait_timeout,
        max_slices=args.max_slices,
        stall_after_batches=args.stall_after_batches,
        progress=_worker_log_printer(args.quiet),
    )
    # A timeout waiting for the plan surfaces through main()'s shared
    # DistributedTimeoutError handler (stderr message, exit code 2).
    report = worker.run()
    print(
        f"worker {report.worker_id}: {report.slices_completed} slice(s), "
        f"{report.experiments_run} experiment(s) executed"
    )
    return 0


def _cmd_federate(args: argparse.Namespace) -> int:
    """Merge several stores of one campaign into a single store."""
    from repro.core.federate import federate_stores

    progress = None
    if not args.quiet:

        def progress(done: int, total: int) -> None:
            if done == total or done % 500 == 0:
                print(f"[{done}/{total}] records merged", file=sys.stderr)

    report = federate_stores(
        resolve_store_url(args.dest, option="DEST"),
        [resolve_store_url(source, option="SOURCE") for source in args.sources],
        shard_records=args.shard_records,
        progress=progress,
    )
    print(report.describe())
    print(f"\nrun `python -m repro.cli inspect {args.dest}` for the merged summary")
    return 0


def _cmd_autofederate(args: argparse.Namespace) -> int:
    """Watch several stores and fold new shards into one destination."""
    from repro.core.federate import autofederate_stores

    progress = None
    if not args.quiet:

        def progress(done: int, total: int) -> None:
            print(f"[{done}/{total}] records folded", file=sys.stderr)

    report = autofederate_stores(
        resolve_store_url(args.dest, option="DEST"),
        [resolve_store_url(source, option="SOURCE") for source in args.sources],
        shard_records=args.shard_records,
        poll_interval=args.poll_interval,
        timeout=args.timeout,
        progress=progress,
    )
    print(report.describe())
    print(f"\nrun `python -m repro.cli inspect {args.dest}` for the merged summary")
    return 0


def _cmd_objstore(args: argparse.Namespace) -> int:
    """Run the local S3-style object-store emulation server (blocking)."""
    from repro.core.objstore import serve

    serve(host=args.host, port=args.port, max_page=args.max_page)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the campaign service control plane (blocking)."""
    from repro.service.server import serve

    serve(
        host=args.host,
        port=args.port,
        state_root=args.state,
        max_campaigns=args.max_campaigns,
    )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit a campaign spec to a running service over HTTP."""
    if args.results_dir:
        args.results_dir = resolve_store_url(args.results_dir, option="--results-dir")
    spec = CampaignSpec.from_cli_args(args)
    client = ServiceClient(args.server)
    response = client.submit(spec)
    campaign_id = response["id"]
    print(f"campaign {campaign_id} ({response['state']}) at {client.base_url}")
    print(f"fingerprint : {response['fingerprint']}")
    print(f"store       : {spec.store_url}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(response, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    if not args.wait:
        return 0
    status = client.wait(
        campaign_id, timeout=args.wait_timeout, poll_interval=args.poll_interval
    )
    print(
        f"campaign {campaign_id} {status['state']}: "
        f"{status.get('completed', '?')} of {status.get('total', '?')} experiments stored"
    )
    if status["state"] != "complete":
        if status.get("error"):
            print(f"error: {status['error']}", file=sys.stderr)
        return 1
    if args.document:
        with open(args.document, "wb") as handle:
            handle.write(client.document(campaign_id))
        print(f"wrote {args.document}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Profile a reduced serial campaign: cProfile + hot-path counters."""
    import cProfile
    import io
    import pstats

    from repro.hotpath import COUNTERS

    config = CampaignConfig(
        workloads=args.workloads,
        golden_runs=args.golden_runs,
        max_experiments_per_workload=args.max_experiments,
        seed=args.seed,
        workers=1,  # cProfile cannot follow pool workers; always serial
    )
    campaign = Campaign(config)
    COUNTERS.reset()
    started = time.monotonic()
    profiler = cProfile.Profile()
    profiler.enable()
    result = campaign.run(progress=_progress_printer(args.quiet, started))
    profiler.disable()
    elapsed = time.monotonic() - started

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(args.sort)
    stats.print_stats(args.top)
    report = "\n".join(
        [
            f"profiled campaign: {result.total_experiments()} experiment(s) "
            f"in {elapsed:.2f}s (serial)",
            "",
            COUNTERS.render(),
            "",
            f"cProfile top {args.top} functions by {args.sort}:",
            stream.getvalue().rstrip(),
        ]
    )
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"\nwrote {args.output}")
    return 0


def _cmd_propagation(args: argparse.Namespace) -> int:
    config = _make_config(args, max_experiments=None)
    campaign = Campaign(config)
    rows = campaign.run_propagation(
        components=args.components,
        fields_per_component=args.fields_per_component,
        progress=_progress_printer(args.quiet, time.monotonic()),
    )
    print(render_table6(rows))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.explain is not None:
        code = args.explain.strip().upper()
        explanation = EXPLANATIONS.get(code)
        if explanation is None:
            raise LintUsageError(
                f"unknown code {code!r} (known: {', '.join(KNOWN_CODES)})"
            )
        print(f"{code}: {TITLES[code]}")
        print()
        print(explanation.rstrip())
        return 0

    paths = args.paths or [os.path.dirname(os.path.abspath(__file__))]
    codes = None
    if args.codes is not None:
        codes = [code for chunk in args.codes for code in chunk.split(",")]

    cache_dir = None if args.no_cache else args.cache_dir
    baseline_entries = None
    if not args.write_baseline and not args.no_baseline:
        baseline_path = args.baseline
        if baseline_path is None and os.path.isfile("lint-baseline.json"):
            baseline_path = "lint-baseline.json"  # auto-pickup in the repo root
        if baseline_path is not None:
            try:
                with open(baseline_path, encoding="utf-8") as handle:
                    baseline_entries = lint_baseline.parse(handle.read())
            except OSError as error:
                raise LintUsageError(f"cannot read baseline: {error}") from error
            except BaselineError as error:
                raise LintUsageError(str(error)) from error

    report = lint_paths(
        paths, codes=codes, cache_dir=cache_dir, baseline_entries=baseline_entries
    )

    if args.write_baseline:
        target = args.baseline or "lint-baseline.json"
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(lint_baseline.serialize(report.diagnostics))
        print(
            f"wrote {len(report.diagnostics)} finding(s) from "
            f"{report.files_checked} file(s) to {target}"
        )
        return 0

    if args.format == "json":
        print(json.dumps(report.to_document(), indent=2, sort_keys=True))
    elif args.format == "github":
        for diagnostic in report.diagnostics:
            print(
                f"::error file={diagnostic.path},line={diagnostic.line},"
                f"col={diagnostic.column},title={diagnostic.code}::"
                f"{_github_escape(diagnostic.message)}"
            )
        for file, code, message in report.stale_baseline:
            print(
                "::error title=stale lint baseline entry::"
                + _github_escape(
                    f"{code} {message!r} ({file}) no longer occurs; remove it "
                    "from lint-baseline.json (the ratchet only goes down)"
                )
            )
        print(
            f"{len(report.diagnostics)} new finding(s), "
            f"{len(report.stale_baseline)} stale baseline entr(ies) in "
            f"{report.files_checked} file(s) checked"
        )
    else:
        for diagnostic in report.diagnostics:
            print(diagnostic.render())
        for file, code, message in report.stale_baseline:
            print(
                f"stale baseline entry: {code} {message!r} ({file}) no longer "
                "occurs; remove it from lint-baseline.json"
            )
        summary = (
            f"{len(report.diagnostics)} finding(s) in {report.files_checked} "
            f"file(s) checked"
        )
        if report.baselined:
            summary += f" ({report.baselined} baselined)"
        print(summary if not report.ok else f"clean: {summary}")
    return 0 if report.ok else 1


def _github_escape(message: str) -> str:
    """GitHub workflow-command data escaping (percent, CR, LF)."""
    return message.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mutiny-campaign",
        description="Run Mutiny fault/error injection campaigns (DSN 2024, §IV-C).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    campaign = subparsers.add_parser(
        "campaign", help="run the injection campaign and print the paper's tables"
    )
    _add_spec_arguments(campaign, with_checkpoint=True)
    campaign.add_argument(
        "--tables", action="store_true", help="print Tables III-V and Figures 6-7"
    )
    campaign.add_argument(
        "--json", metavar="FILE", default=None, help="write a JSON summary to FILE"
    )
    campaign.set_defaults(func=_cmd_campaign)

    worker = subparsers.add_parser(
        "worker",
        help="execute leased plan slices of a distributed campaign "
        "(run one per host sharing the coordinator's --results-dir)",
    )
    worker.add_argument(
        "--results-dir",
        metavar="DIR",
        required=True,
        help="the shared result store the coordinator publishes into "
        "(directory or objstore:// URL)",
    )
    worker.add_argument(
        "--worker-id",
        metavar="ID",
        default=None,
        help="lease/provenance identity (default: <hostname>-<pid>)",
    )
    worker.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="local process-pool size for executing a claimed slice "
        "(default: 1 = in-process)",
    )
    worker.add_argument(
        "--chunk-size",
        type=_positive_int,
        default=None,
        metavar="K",
        help="experiments per batch/shard (default: sized automatically)",
    )
    worker.add_argument(
        "--shard-batch",
        type=_positive_int,
        default=None,
        metavar="N",
        help="finished batches coalesced per stored shard object "
        "(conditional appends; every batch stays durable on completion, "
        "the store holds 1/N the objects; default: inherit the "
        "coordinator's --shard-batch from the published plan)",
    )
    worker.add_argument(
        "--lease-ttl",
        type=_positive_float,
        default=30.0,
        metavar="S",
        help="seconds of missed heartbeats after which this worker's slice "
        "lease may be reclaimed; keep well above one batch duration "
        "(default: 30)",
    )
    worker.add_argument(
        "--heartbeat",
        type=_positive_float,
        default=None,
        metavar="S",
        help="seconds between lease heartbeats (default: lease-ttl / 4)",
    )
    worker.add_argument(
        "--poll-interval",
        type=_positive_float,
        default=0.5,
        metavar="S",
        help="seconds between claim scans while other workers hold every "
        "remaining slice (default: 0.5)",
    )
    worker.add_argument(
        "--wait-timeout",
        type=_positive_float,
        default=60.0,
        metavar="S",
        help="seconds to wait for the coordinator to publish the plan (default: 60)",
    )
    worker.add_argument(
        "--max-slices",
        type=_positive_int,
        default=None,
        metavar="N",
        help="exit after completing N slices (default: run until the campaign "
        "is complete)",
    )
    worker.add_argument(
        "--stall-after-batches",
        type=_positive_int,
        default=None,
        metavar="N",
        help="fault injection: after N completed batches, stop heartbeating and "
        "hold the lease until killed — simulates a hung worker so the "
        "reclamation path can be exercised (tests/CI)",
    )
    worker.add_argument(
        "--quiet", action="store_true", help="suppress the progress lines on stderr"
    )
    worker.set_defaults(func=_cmd_worker)

    propagation = subparsers.add_parser(
        "propagation", help="run the Table VI component-to-Apiserver experiments"
    )
    _add_common_arguments(propagation)
    propagation.add_argument(
        "--components",
        type=_parse_components,
        default=_COMPONENTS,
        metavar="LIST",
        help="comma-separated components to inject into "
        "(kube-controller-manager, kube-scheduler, kubelet, kubelet-<node>)",
    )
    propagation.add_argument(
        "--fields-per-component",
        type=_positive_int,
        default=10,
        metavar="K",
        help="recorded fields injected per (workload, component) pair (default: 10)",
    )
    propagation.set_defaults(func=_cmd_propagation)

    profile = subparsers.add_parser(
        "profile",
        help="profile a reduced serial campaign: cProfile plus the hot-path "
        "counters (encodes, decodes, validations, watch dispatches)",
    )
    profile.add_argument(
        "--workloads",
        type=_parse_workloads,
        default=tuple(WorkloadKind),
        metavar="LIST",
        help="comma-separated workloads to run (default: deploy,scale,failover)",
    )
    profile.add_argument("--seed", type=int, default=7, help="campaign seed (default: 7)")
    profile.add_argument(
        "--golden-runs",
        type=_positive_int,
        default=2,
        help="golden runs per workload used for the baseline (default: 2)",
    )
    profile.add_argument(
        "--max-experiments",
        type=_non_negative_int,
        default=8,
        metavar="M",
        help="experiments per workload, 0 = the full generated campaign "
        "(default: 8 — profiling multiplies the runtime)",
    )
    profile.add_argument(
        "--top",
        type=_positive_int,
        default=25,
        metavar="N",
        help="pstats rows to print (default: 25)",
    )
    profile.add_argument(
        "--sort",
        choices=("cumulative", "tottime", "ncalls"),
        default="tottime",
        help="pstats sort order (default: tottime)",
    )
    profile.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="also write the report (counters + pstats) to FILE",
    )
    profile.add_argument(
        "--quiet", action="store_true", help="suppress the progress lines on stderr"
    )
    profile.set_defaults(func=_cmd_profile)

    inspect = subparsers.add_parser(
        "inspect", help="summarize an existing sharded result store"
    )
    inspect.add_argument(
        "results_dir",
        metavar="RESULTS_DIR",
        help="a --results-dir store (directory or objstore:// URL)",
    )
    inspect.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="also write a canonical JSON summary (worker-count independent; "
        "CI diffs it between serial and parallel runs)",
    )
    inspect.set_defaults(func=_cmd_inspect)

    federate = subparsers.add_parser(
        "federate",
        help="merge several result stores of one campaign (same fingerprint) "
        "into a single store whose digest matches a serial run",
    )
    federate.add_argument(
        "dest",
        metavar="DEST",
        help="destination store (directory or objstore:// URL; created if absent)",
    )
    federate.add_argument(
        "sources",
        metavar="SOURCE",
        nargs="+",
        help="source stores; on overlapping plan indexes the later source wins",
    )
    federate.add_argument(
        "--shard-records",
        type=_positive_int,
        default=512,
        metavar="K",
        help="records per merged shard (default: 512)",
    )
    federate.add_argument(
        "--quiet", action="store_true", help="suppress the progress lines on stderr"
    )
    federate.set_defaults(func=_cmd_federate)

    autofederate = subparsers.add_parser(
        "autofederate",
        help="watch several result stores of one campaign and incrementally "
        "fold newly completed experiments into a destination store until "
        "the full plan is there (sources may not exist yet when the "
        "watch starts)",
    )
    autofederate.add_argument(
        "dest",
        metavar="DEST",
        help="destination store (directory or objstore:// URL; created once "
        "the first source manifest appears)",
    )
    autofederate.add_argument(
        "sources",
        metavar="SOURCE",
        nargs="+",
        help="source stores to watch; on an index first seen in several "
        "sources within one poll round, the later source wins",
    )
    autofederate.add_argument(
        "--poll-interval",
        type=_positive_float,
        default=0.5,
        metavar="S",
        help="seconds between source scans (default: 0.5)",
    )
    autofederate.add_argument(
        "--timeout",
        type=_positive_float,
        default=None,
        metavar="S",
        help="fail if the destination is incomplete after S seconds "
        "(default: watch forever)",
    )
    autofederate.add_argument(
        "--shard-records",
        type=_positive_int,
        default=512,
        metavar="K",
        help="records per merged shard (default: 512)",
    )
    autofederate.add_argument(
        "--quiet", action="store_true", help="suppress the progress lines on stderr"
    )
    autofederate.set_defaults(func=_cmd_autofederate)

    objstore = subparsers.add_parser(
        "objstore",
        help="run the local S3-style object-store emulation server "
        "(use objstore://HOST:PORT/bucket as a --results-dir)",
    )
    objstore.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    objstore.add_argument(
        "--port",
        type=_non_negative_int,
        default=8383,
        help="bind port, 0 = pick a free one (default: 8383)",
    )
    objstore.add_argument(
        "--max-page",
        type=_positive_int,
        default=None,
        metavar="N",
        help="server-side cap on keys per /list page — clients paginate "
        "transparently; tests/CI use a tiny cap to force pagination "
        "(default: uncapped)",
    )
    objstore.set_defaults(func=_cmd_objstore)

    serve = subparsers.add_parser(
        "serve",
        help="run the campaign service: a stateless HTTP control plane that "
        "accepts CampaignSpec documents on POST /v1/campaigns, executes "
        "them on background threads, and recovers purely from its "
        "transport-backed state store after a restart",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=_non_negative_int,
        default=8484,
        help="bind port, 0 = pick a free one (default: 8484)",
    )
    serve.add_argument(
        "--state",
        metavar="DIR",
        required=True,
        help="the service's campaign index store (directory or objstore:// "
        "URL); a restarted service pointed at the same state rehydrates "
        "and resumes every incomplete campaign",
    )
    serve.add_argument(
        "--max-campaigns",
        type=_positive_int,
        default=4,
        metavar="N",
        help="concurrent-campaign quota; submissions beyond it get 429 with "
        "a Retry-After header (default: 4)",
    )
    serve.set_defaults(func=_cmd_serve)

    submit = subparsers.add_parser(
        "submit",
        help="submit a campaign to a running service over HTTP (the same "
        "flags as 'campaign'; the spec they build is POSTed instead of "
        "executed in this process)",
    )
    _add_spec_arguments(submit, with_checkpoint=False)
    submit.add_argument(
        "--server",
        metavar="URL",
        required=True,
        help="the service base URL (http://host:port)",
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="poll the campaign's status until it reaches a terminal state "
        "(tolerating service restarts) and exit nonzero unless complete",
    )
    submit.add_argument(
        "--wait-timeout",
        type=_positive_float,
        default=None,
        metavar="S",
        help="with --wait: give up after S seconds (default: wait forever)",
    )
    submit.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="write the service's submission response (id, fingerprint, "
        "links) to FILE",
    )
    submit.add_argument(
        "--document",
        metavar="FILE",
        default=None,
        help="with --wait, after completion: write the campaign's canonical "
        "inspect document (the GET /v1/campaigns/{id} bytes) to FILE",
    )
    submit.set_defaults(func=_cmd_submit)

    lint = subparsers.add_parser(
        "lint",
        help="run mutiny-lint, the AST checker that enforces the repo's "
        "cross-layer contracts (informer immutability, transport purity, "
        "determinism, lock discipline, swallowed exceptions)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (default: the installed repro "
        "package)",
    )
    lint.add_argument(
        "--codes",
        action="append",
        default=None,
        metavar="MUTnnn[,MUTnnn...]",
        help="restrict to these codes (repeatable or comma-separated; "
        f"known: {', '.join(KNOWN_CODES)})",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format (default: text; json is schema-versioned; "
        "github emits ::error workflow annotations for inline PR findings)",
    )
    lint.add_argument(
        "--explain",
        metavar="MUTnnn",
        default=None,
        help="print the contract behind a code (what it enforces, the "
        "motivating bug, the correct pattern) and exit",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="findings baseline to apply (default: lint-baseline.json in "
        "the current directory, when present)",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings into the baseline file and exit 0; "
        "subsequent runs fail only on findings not recorded there",
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline and report every finding",
    )
    lint.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=DEFAULT_CACHE_DIR,
        help="per-file incremental cache directory "
        f"(default: {DEFAULT_CACHE_DIR})",
    )
    lint.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache (always re-parse every file)",
    )
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point of ``python -m repro.cli`` and the console script."""
    args = build_parser().parse_args(argv)
    if getattr(args, "max_experiments", None) == 0:
        args.max_experiments = None
    try:
        return args.func(args)
    except (
        ResultStoreMismatchError,
        DistributedTimeoutError,
        TransportError,
        SpecError,
        ServiceError,
        LintUsageError,
    ) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # The consumer of our stdout went away (e.g. `... | head`).  Point
        # stdout at devnull so the interpreter's final flush stays quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
