"""Protobuf-like binary serialization for API objects.

Kubernetes stores API objects in etcd encoded with Protobuf.  The paper's
serialization-byte injections rely on two properties of that encoding:

* a corrupted byte can make the object *undecodable*, in which case the
  Apiserver deletes the resource (paper §II-D);
* a corrupted byte can silently *move a value from one field to another*,
  or truncate a value, leaving a decodable but wrong object (paper §V-C1).

:mod:`repro.serialization` implements a compact varint / length-delimited
wire format with both properties, plus utilities to enumerate the injectable
field paths of an object — the raw material of the injection campaign.
"""

from repro.serialization.codec import (
    DecodeError,
    clear_codec_caches,
    decode,
    decode_shared,
    encode,
)
from repro.serialization.fieldpath import (
    CompiledPath,
    FieldRecord,
    compile_path,
    delete_path,
    get_path,
    iter_field_paths,
    set_path,
)

__all__ = [
    "CompiledPath",
    "DecodeError",
    "FieldRecord",
    "clear_codec_caches",
    "compile_path",
    "decode",
    "decode_shared",
    "delete_path",
    "encode",
    "get_path",
    "iter_field_paths",
    "set_path",
]
