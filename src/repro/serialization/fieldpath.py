"""Field-path utilities for API objects.

The injection campaign operates on *fields* of resource objects: it records
which fields appear in the messages written to etcd during a golden run and
then generates bit-flip / value-set injections per field.  Field paths are
dotted strings; list elements are addressed by index, e.g.
``spec.template.spec.containers.0.image``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator


@dataclass(frozen=True)
class FieldRecord:
    """A leaf field observed in an API object.

    Attributes:
        path: dotted field path from the object root.
        value_type: ``"int"``, ``"str"``, ``"bool"``, ``"float"`` or ``"none"``.
        value: the value observed when the field was recorded.
    """

    path: str
    value_type: str
    value: Any


def _type_name(value: Any) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    if value is None:
        return "none"
    return type(value).__name__


def iter_field_paths(obj: Any, prefix: str = "") -> Iterator[FieldRecord]:
    """Yield a :class:`FieldRecord` for every leaf field in ``obj``.

    Dictionaries and lists are traversed; every scalar leaf (including
    ``None``) produces one record.
    """
    if isinstance(obj, dict):
        for key, value in obj.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            yield from iter_field_paths(value, path)
    elif isinstance(obj, (list, tuple)):
        for index, value in enumerate(obj):
            path = f"{prefix}.{index}" if prefix else str(index)
            yield from iter_field_paths(value, path)
    else:
        yield FieldRecord(path=prefix, value_type=_type_name(obj), value=obj)


def _split(path: str) -> list[str]:
    if not path:
        raise KeyError("empty field path")
    return path.split(".")


def get_path(obj: Any, path: str) -> Any:
    """Return the value at ``path``; raise ``KeyError`` if absent."""
    node = obj
    for part in _split(path):
        if isinstance(node, dict):
            if part not in node:
                raise KeyError(f"field path component {part!r} not found in {path!r}")
            node = node[part]
        elif isinstance(node, (list, tuple)):
            try:
                index = int(part)
            except ValueError as exc:
                raise KeyError(f"expected list index at {part!r} in {path!r}") from exc
            if index >= len(node):
                raise KeyError(f"index {index} out of range in {path!r}")
            node = node[index]
        else:
            raise KeyError(f"cannot descend into scalar at {part!r} in {path!r}")
    return node


def set_path(obj: Any, path: str, value: Any) -> None:
    """Set the value at ``path`` in place; raise ``KeyError`` if the parent is absent."""
    parts = _split(path)
    node = obj
    for part in parts[:-1]:
        if isinstance(node, dict):
            if part not in node:
                raise KeyError(f"field path component {part!r} not found in {path!r}")
            node = node[part]
        elif isinstance(node, list):
            index = int(part)
            if index >= len(node):
                raise KeyError(f"index {index} out of range in {path!r}")
            node = node[index]
        else:
            raise KeyError(f"cannot descend into scalar at {part!r} in {path!r}")
    last = parts[-1]
    if isinstance(node, dict):
        node[last] = value
    elif isinstance(node, list):
        index = int(last)
        if index >= len(node):
            raise KeyError(f"index {index} out of range in {path!r}")
        node[index] = value
    else:
        raise KeyError(f"cannot set field on scalar parent in {path!r}")


def delete_path(obj: Any, path: str) -> None:
    """Remove the value at ``path``; raise ``KeyError`` if absent."""
    parts = _split(path)
    parent_path = ".".join(parts[:-1])
    parent = get_path(obj, parent_path) if parent_path else obj
    last = parts[-1]
    if isinstance(parent, dict):
        if last not in parent:
            raise KeyError(f"field path {path!r} not found")
        del parent[last]
    elif isinstance(parent, list):
        index = int(last)
        if index >= len(parent):
            raise KeyError(f"index {index} out of range in {path!r}")
        del parent[index]
    else:
        raise KeyError(f"cannot delete field from scalar parent in {path!r}")
