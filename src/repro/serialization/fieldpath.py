"""Field-path utilities for API objects.

The injection campaign operates on *fields* of resource objects: it records
which fields appear in the messages written to etcd during a golden run and
then generates bit-flip / value-set injections per field.  Field paths are
dotted strings; list elements are addressed by index, e.g.
``spec.template.spec.containers.0.image``.

Paths are parsed once: :func:`compile_path` caches a :class:`CompiledPath`
per distinct dotted string (the parts pre-split, list indexes pre-converted),
and :func:`get_path` / :func:`set_path` / :func:`delete_path` are thin
wrappers over the cache — callers on the hot path (the injector's mutation
targets, the validation layer's nested lookups) stop paying a string split
and ``int()`` conversion per call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional


@dataclass(frozen=True)
class FieldRecord:
    """A leaf field observed in an API object.

    Attributes:
        path: dotted field path from the object root.
        value_type: ``"int"``, ``"str"``, ``"bool"``, ``"float"`` or ``"none"``.
        value: the value observed when the field was recorded.
    """

    path: str
    value_type: str
    value: Any


def _type_name(value: Any) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    if value is None:
        return "none"
    return type(value).__name__


def iter_field_paths(obj: Any, prefix: str = "") -> Iterator[FieldRecord]:
    """Yield a :class:`FieldRecord` for every leaf field in ``obj``.

    Dictionaries and lists are traversed; every scalar leaf (including
    ``None``) produces one record.
    """
    if isinstance(obj, dict):
        for key, value in obj.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            yield from iter_field_paths(value, path)
    elif isinstance(obj, (list, tuple)):
        for index, value in enumerate(obj):
            path = f"{prefix}.{index}" if prefix else str(index)
            yield from iter_field_paths(value, path)
    else:
        yield FieldRecord(path=prefix, value_type=_type_name(obj), value=obj)


_MISSING = object()


class CompiledPath:
    """A dotted field path parsed once, reusable across calls.

    ``parts`` holds ``(text, index)`` pairs: ``text`` is the raw path
    component (used for dictionary lookups), ``index`` its integer form when
    the component can address a list element (``None`` otherwise).
    """

    __slots__ = ("path", "parts")

    def __init__(self, path: str):
        if not path:
            raise KeyError("empty field path")
        self.path = path
        parts: list[tuple[str, Optional[int]]] = []
        for text in path.split("."):
            try:
                index: Optional[int] = int(text)
            except ValueError:
                index = None
            parts.append((text, index))
        self.parts = tuple(parts)

    def __repr__(self) -> str:
        return f"CompiledPath({self.path!r})"

    # ----------------------------------------------------------------- access

    def _descend(self, node: Any, text: str, index: Optional[int]) -> Any:
        path = self.path
        if isinstance(node, dict):
            if text not in node:
                raise KeyError(f"field path component {text!r} not found in {path!r}")
            return node[text]
        if isinstance(node, (list, tuple)):
            if index is None:
                raise KeyError(f"expected list index at {text!r} in {path!r}")
            if index >= len(node):
                raise KeyError(f"index {index} out of range in {path!r}")
            return node[index]
        raise KeyError(f"cannot descend into scalar at {text!r} in {path!r}")

    def get(self, obj: Any) -> Any:
        """Return the value at this path; raise ``KeyError`` if absent."""
        node = obj
        for text, index in self.parts:
            node = self._descend(node, text, index)
        return node

    def find(self, obj: Any, default: Any = None) -> Any:
        """Return the value at this path, or ``default`` if any step is absent."""
        node = obj
        for text, index in self.parts:
            if isinstance(node, dict):
                node = node.get(text, _MISSING)
                if node is _MISSING:
                    return default
            elif isinstance(node, (list, tuple)):
                if index is None or not -len(node) <= index < len(node):
                    return default
                node = node[index]
            else:
                return default
        return node

    def set(self, obj: Any, value: Any) -> None:
        """Set the value in place; raise ``KeyError`` if the parent is absent."""
        node = obj
        path = self.path
        for text, index in self.parts[:-1]:
            if isinstance(node, dict):
                if text not in node:
                    raise KeyError(f"field path component {text!r} not found in {path!r}")
                node = node[text]
            elif isinstance(node, list):
                if index is None:
                    index = int(text)  # bug-compatible: raises ValueError
                if index >= len(node):
                    raise KeyError(f"index {index} out of range in {path!r}")
                node = node[index]
            else:
                raise KeyError(f"cannot descend into scalar at {text!r} in {path!r}")
        text, index = self.parts[-1]
        if isinstance(node, dict):
            node[text] = value
        elif isinstance(node, list):
            if index is None:
                index = int(text)  # bug-compatible: raises ValueError
            if index >= len(node):
                raise KeyError(f"index {index} out of range in {path!r}")
            node[index] = value
        else:
            raise KeyError(f"cannot set field on scalar parent in {path!r}")

    def delete(self, obj: Any) -> None:
        """Remove the value at this path; raise ``KeyError`` if absent."""
        node = obj
        for text, index in self.parts[:-1]:
            node = self._descend(node, text, index)
        text, index = self.parts[-1]
        path = self.path
        if isinstance(node, dict):
            if text not in node:
                raise KeyError(f"field path {path!r} not found")
            del node[text]
        elif isinstance(node, list):
            if index is None:
                index = int(text)  # bug-compatible: raises ValueError
            if index >= len(node):
                raise KeyError(f"index {index} out of range in {path!r}")
            del node[index]
        else:
            raise KeyError(f"cannot delete field from scalar parent in {path!r}")


_COMPILED_CACHE_MAX = 4096
_compiled_cache: dict[str, CompiledPath] = {}


def compile_path(path: str) -> CompiledPath:
    """Return the cached :class:`CompiledPath` for ``path`` (parsing it once)."""
    compiled = _compiled_cache.get(path)
    if compiled is None:
        compiled = CompiledPath(path)
        if len(_compiled_cache) < _COMPILED_CACHE_MAX:
            _compiled_cache[path] = compiled
    return compiled


def get_path(obj: Any, path: str) -> Any:
    """Return the value at ``path``; raise ``KeyError`` if absent."""
    return compile_path(path).get(obj)


def set_path(obj: Any, path: str, value: Any) -> None:
    """Set the value at ``path`` in place; raise ``KeyError`` if the parent is absent."""
    compile_path(path).set(obj, value)


def delete_path(obj: Any, path: str) -> None:
    """Remove the value at ``path``; raise ``KeyError`` if absent."""
    compile_path(path).delete(obj)
