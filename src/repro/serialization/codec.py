"""A varint / length-delimited wire codec for API objects.

The format ("mutinyproto") mirrors the aspects of Protobuf that matter for
the paper's serialization-byte fault injections:

* integers are varint-encoded (little-endian base-128 with a continuation
  bit), so flipping a low-order bit changes the value slightly while flipping
  the continuation bit breaks framing;
* strings, nested messages and lists are length-delimited, so corrupting a
  length byte truncates or overruns the payload;
* field keys are encoded inline, so corrupting a key byte silently moves the
  value to a different (usually unknown) field.

Objects are plain Python dictionaries whose leaves are ``int``, ``float``,
``bool``, ``str``, ``None``, lists, or nested dictionaries — exactly the
shape of the resource objects in :mod:`repro.objects`.
"""

from __future__ import annotations

from typing import Any

# One-byte value type tags.
_TYPE_INT = 0x00
_TYPE_STR = 0x01
_TYPE_BOOL = 0x02
_TYPE_MESSAGE = 0x03
_TYPE_LIST = 0x04
_TYPE_FLOAT = 0x05
_TYPE_NONE = 0x06

_MAX_LENGTH = 16 * 1024 * 1024  # guard against corrupted lengths exploding memory


class DecodeError(ValueError):
    """Raised when a byte string cannot be decoded back into an object."""


class EncodeError(ValueError):
    """Raised when an object contains values the wire format cannot represent."""


def _encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a base-128 varint."""
    if value < 0:
        raise EncodeError(f"varint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _decode_varint(data: bytes, offset: int) -> tuple[int, int]:
    """Decode a varint at ``offset``; return ``(value, new_offset)``."""
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise DecodeError("truncated varint")
        byte = data[pos]
        result |= (byte & 0x7F) << shift
        pos += 1
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise DecodeError("varint too long")


def _encode_zigzag(value: int) -> int:
    """Map a signed integer onto an unsigned one (ZigZag encoding)."""
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def _decode_zigzag(value: int) -> int:
    """Inverse of :func:`_encode_zigzag`."""
    return (value >> 1) ^ -(value & 1)


def _encode_value(value: Any) -> bytes:
    """Encode a single value with its type tag."""
    if value is None:
        return bytes([_TYPE_NONE])
    if isinstance(value, bool):
        return bytes([_TYPE_BOOL, 1 if value else 0])
    if isinstance(value, int):
        return bytes([_TYPE_INT]) + _encode_varint(_encode_zigzag(value))
    if isinstance(value, float):
        import struct

        return bytes([_TYPE_FLOAT]) + struct.pack("<d", value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return bytes([_TYPE_STR]) + _encode_varint(len(raw)) + raw
    if isinstance(value, dict):
        payload = _encode_message(value)
        return bytes([_TYPE_MESSAGE]) + _encode_varint(len(payload)) + payload
    if isinstance(value, (list, tuple)):
        parts = bytearray()
        parts += _encode_varint(len(value))
        for item in value:
            parts += _encode_value(item)
        return bytes([_TYPE_LIST]) + _encode_varint(len(parts)) + bytes(parts)
    raise EncodeError(f"cannot encode value of type {type(value).__name__}")


def _decode_value(data: bytes, offset: int) -> tuple[Any, int]:
    """Decode a single tagged value at ``offset``."""
    if offset >= len(data):
        raise DecodeError("truncated value tag")
    tag = data[offset]
    offset += 1
    if tag == _TYPE_NONE:
        return None, offset
    if tag == _TYPE_BOOL:
        if offset >= len(data):
            raise DecodeError("truncated bool")
        return bool(data[offset]), offset + 1
    if tag == _TYPE_INT:
        raw, offset = _decode_varint(data, offset)
        return _decode_zigzag(raw), offset
    if tag == _TYPE_FLOAT:
        import struct

        if offset + 8 > len(data):
            raise DecodeError("truncated float")
        return struct.unpack("<d", data[offset : offset + 8])[0], offset + 8
    if tag == _TYPE_STR:
        length, offset = _decode_varint(data, offset)
        if length > _MAX_LENGTH:
            raise DecodeError(f"string length {length} exceeds limit")
        if offset + length > len(data):
            raise DecodeError("truncated string")
        raw = data[offset : offset + length]
        try:
            return raw.decode("utf-8"), offset + length
        except UnicodeDecodeError as exc:
            raise DecodeError(f"invalid utf-8 in string: {exc}") from exc
    if tag == _TYPE_MESSAGE:
        length, offset = _decode_varint(data, offset)
        if length > _MAX_LENGTH:
            raise DecodeError(f"message length {length} exceeds limit")
        if offset + length > len(data):
            raise DecodeError("truncated message")
        return _decode_message(data[offset : offset + length]), offset + length
    if tag == _TYPE_LIST:
        length, offset = _decode_varint(data, offset)
        if length > _MAX_LENGTH:
            raise DecodeError(f"list length {length} exceeds limit")
        if offset + length > len(data):
            raise DecodeError("truncated list")
        chunk = data[offset : offset + length]
        count, pos = _decode_varint(chunk, 0)
        if count > _MAX_LENGTH:
            raise DecodeError(f"list count {count} exceeds limit")
        items = []
        for _ in range(count):
            item, pos = _decode_value(chunk, pos)
            items.append(item)
        if pos != len(chunk):
            raise DecodeError("trailing bytes in list payload")
        return items, offset + length
    raise DecodeError(f"unknown value type tag 0x{tag:02x}")


def _encode_message(obj: dict) -> bytes:
    """Encode a dictionary as a sequence of key/value entries."""
    parts = bytearray()
    for key in obj:
        if not isinstance(key, str):
            raise EncodeError(f"message keys must be strings, got {type(key).__name__}")
        raw_key = key.encode("utf-8")
        parts += _encode_varint(len(raw_key))
        parts += raw_key
        parts += _encode_value(obj[key])
    return bytes(parts)


def _decode_message(data: bytes) -> dict:
    """Decode a sequence of key/value entries back into a dictionary."""
    obj: dict[str, Any] = {}
    offset = 0
    while offset < len(data):
        key_len, offset = _decode_varint(data, offset)
        if key_len > _MAX_LENGTH:
            raise DecodeError(f"key length {key_len} exceeds limit")
        if offset + key_len > len(data):
            raise DecodeError("truncated key")
        raw_key = data[offset : offset + key_len]
        try:
            key = raw_key.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DecodeError(f"invalid utf-8 in key: {exc}") from exc
        offset += key_len
        value, offset = _decode_value(data, offset)
        obj[key] = value
    return obj


def encode(obj: dict) -> bytes:
    """Serialize an API object (a nested dictionary) to wire bytes."""
    if not isinstance(obj, dict):
        raise EncodeError(f"top-level object must be a dict, got {type(obj).__name__}")
    return _encode_message(obj)


def decode(data: bytes) -> dict:
    """Deserialize wire bytes back into an API object.

    Raises :class:`DecodeError` if the bytes are not a valid encoding —
    the situation in which the Apiserver deletes the "undecryptable"
    resource (paper §II-D).
    """
    if not isinstance(data, (bytes, bytearray)):
        raise DecodeError(f"expected bytes, got {type(data).__name__}")
    return _decode_message(bytes(data))
