"""A varint / length-delimited wire codec for API objects.

The format ("mutinyproto") mirrors the aspects of Protobuf that matter for
the paper's serialization-byte fault injections:

* integers are varint-encoded (little-endian base-128 with a continuation
  bit), so flipping a low-order bit changes the value slightly while flipping
  the continuation bit breaks framing;
* strings, nested messages and lists are length-delimited, so corrupting a
  length byte truncates or overruns the payload;
* field keys are encoded inline, so corrupting a key byte silently moves the
  value to a different (usually unknown) field.

Objects are plain Python dictionaries whose leaves are ``int``, ``float``,
``bool``, ``str``, ``None``, lists, or nested dictionaries — exactly the
shape of the resource objects in :mod:`repro.objects`.

Two caches sit on the hot path (see ``docs/PERFORMANCE.md``):

* a **decode cache** keyed by the exact value bytes — the store persists
  serialized bytes, so every controller read of an unchanged object used to
  pay a full varint round-trip; identical bytes always decode to identical
  trees, so the round-trip is paid once and every further read receives an
  independent deep copy of the cached tree.  Corrupted/injected bytes differ
  from any successfully decoded bytes and therefore *bypass* the cache by
  construction: they are decoded (and fail) fresh every time, so the fault
  semantics of the paper are untouched;
* an **encode key cache** interning the length-prefixed encoding of message
  keys — the same few dozen field names ("metadata", "spec", "replicas", …)
  appear in every message of a campaign.
"""

from __future__ import annotations

import marshal
import struct
from collections import OrderedDict
from typing import Any

from repro.hotpath import COUNTERS

# One-byte value type tags.
_TYPE_INT = 0x00
_TYPE_STR = 0x01
_TYPE_BOOL = 0x02
_TYPE_MESSAGE = 0x03
_TYPE_LIST = 0x04
_TYPE_FLOAT = 0x05
_TYPE_NONE = 0x06

_MAX_LENGTH = 16 * 1024 * 1024  # guard against corrupted lengths exploding memory

#: Bound on cached decoded values (entries); the campaign working set is a
#: few hundred distinct serialized objects, re-read thousands of times.
_DECODE_CACHE_MAX = 1024
#: Values larger than this are decoded but never cached (memory guard).
_DECODE_CACHE_VALUE_LIMIT = 64 * 1024
#: Maps exact value bytes to ``[tree, marshal_blob_or_None]``; the blob is
#: produced lazily on the first copying read and turns every further
#: :func:`decode` hit into a single C-level ``marshal.loads``.
_decode_cache: "OrderedDict[bytes, list]" = OrderedDict()

#: Interned ``varint(len) + utf-8`` encodings of message keys.
_KEY_CACHE_MAX = 4096
_key_cache: dict[str, bytes] = {}

#: Canonical instances of short decoded strings (field keys, kind names,
#: phases, namespaces, …).  Sharing one instance per distinct text makes the
#: apiserver's ``marshal``-based list snapshots both smaller and ~2× faster
#: to load, because ``marshal`` writes identity-based back-references.
_STR_CACHE_MAX = 8192
_STR_CACHE_VALUE_LIMIT = 128
_str_cache: dict[str, str] = {}

#: Interned ``tag + varint(len) + utf-8`` encodings of short string values —
#: phases, kind names, namespaces and label values repeat across every
#: message of a campaign.
_ENCODED_STR_CACHE_MAX = 8192
_ENCODED_STR_VALUE_LIMIT = 128
_encoded_str_cache: dict[str, bytes] = {}


def _canonical_str(text: str) -> str:
    """Return the canonical shared instance of ``text`` (equal, maybe same)."""
    cached = _str_cache.get(text)
    if cached is not None:
        return cached
    if len(text) <= _STR_CACHE_VALUE_LIMIT and len(_str_cache) < _STR_CACHE_MAX:
        _str_cache[text] = text
    return text


def clear_codec_caches() -> None:
    """Drop the decode/key/string caches (tests; never needed for correctness)."""
    _decode_cache.clear()
    _key_cache.clear()
    _str_cache.clear()
    _encoded_str_cache.clear()


class DecodeError(ValueError):
    """Raised when a byte string cannot be decoded back into an object."""


class EncodeError(ValueError):
    """Raised when an object contains values the wire format cannot represent."""


def _copy_tree(node: Any) -> Any:
    """Deep-copy a decoded tree (dicts, lists and immutable scalars only)."""
    kind = type(node)
    if kind is dict:
        return {key: _copy_tree(value) for key, value in node.items()}
    if kind is list:
        return [_copy_tree(value) for value in node]
    return node


_SMALL_VARINTS = [bytes([value]) for value in range(0x80)]


def _encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a base-128 varint."""
    if 0 <= value < 0x80:
        return _SMALL_VARINTS[value]
    if value < 0:
        raise EncodeError(f"varint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _decode_varint(data: bytes, offset: int) -> tuple[int, int]:
    """Decode a varint at ``offset``; return ``(value, new_offset)``."""
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise DecodeError("truncated varint")
        byte = data[pos]
        result |= (byte & 0x7F) << shift
        pos += 1
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise DecodeError("varint too long")


def _encode_zigzag(value: int) -> int:
    """Map a signed integer onto an unsigned one (ZigZag encoding)."""
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def _decode_zigzag(value: int) -> int:
    """Inverse of :func:`_encode_zigzag`."""
    return (value >> 1) ^ -(value & 1)


def _encode_str(value: str) -> bytes:
    """Return the full ``tag + varint(len) + utf-8`` encoding of a string."""
    cached = _encoded_str_cache.get(value)
    if cached is not None:
        return cached
    raw = value.encode("utf-8")
    encoded = bytes([_TYPE_STR]) + _encode_varint(len(raw)) + raw
    if len(value) <= _ENCODED_STR_VALUE_LIMIT and len(_encoded_str_cache) < _ENCODED_STR_CACHE_MAX:
        _encoded_str_cache[value] = encoded
    return encoded


def _encode_value_into(value: Any, out: bytearray) -> None:
    """Append the tagged encoding of ``value`` to ``out``.

    Exact-type dispatch first (the only types API objects contain), then the
    original ``isinstance`` chain for subclasses — the produced bytes are
    identical either way, the writer style just avoids one intermediate
    ``bytes`` allocation per node.
    """
    kind = type(value)
    if kind is str:
        out += _encode_str(value)
        return
    if value is None:
        out.append(_TYPE_NONE)
        return
    if kind is bool:
        out.append(_TYPE_BOOL)
        out.append(1 if value else 0)
        return
    if kind is int:
        out.append(_TYPE_INT)
        out += _encode_varint(_encode_zigzag(value))
        return
    if kind is float:
        out.append(_TYPE_FLOAT)
        out += struct.pack("<d", value)
        return
    if kind is dict:
        payload = _encode_message(value)
        out.append(_TYPE_MESSAGE)
        out += _encode_varint(len(payload))
        out += payload
        return
    if kind is list or kind is tuple:
        parts = bytearray()
        parts += _encode_varint(len(value))
        for item in value:
            _encode_value_into(item, parts)
        out.append(_TYPE_LIST)
        out += _encode_varint(len(parts))
        out += parts
        return
    # Subclasses (IntEnum, str subclasses, …): the original isinstance order,
    # bool before int.
    if isinstance(value, bool):
        out.append(_TYPE_BOOL)
        out.append(1 if value else 0)
        return
    if isinstance(value, int):
        out.append(_TYPE_INT)
        out += _encode_varint(_encode_zigzag(value))
        return
    if isinstance(value, float):
        out.append(_TYPE_FLOAT)
        out += struct.pack("<d", value)
        return
    if isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_TYPE_STR)
        out += _encode_varint(len(raw))
        out += raw
        return
    if isinstance(value, dict):
        payload = _encode_message(value)
        out.append(_TYPE_MESSAGE)
        out += _encode_varint(len(payload))
        out += payload
        return
    if isinstance(value, (list, tuple)):
        parts = bytearray()
        parts += _encode_varint(len(value))
        for item in value:
            _encode_value_into(item, parts)
        out.append(_TYPE_LIST)
        out += _encode_varint(len(parts))
        out += parts
        return
    raise EncodeError(f"cannot encode value of type {type(value).__name__}")


def _encode_value(value: Any) -> bytes:
    """Encode a single value with its type tag."""
    out = bytearray()
    _encode_value_into(value, out)
    return bytes(out)


def _decode_value(data: bytes, offset: int) -> tuple[Any, int]:
    """Decode a single tagged value at ``offset``."""
    if offset >= len(data):
        raise DecodeError("truncated value tag")
    tag = data[offset]
    offset += 1
    if tag == _TYPE_NONE:
        return None, offset
    if tag == _TYPE_BOOL:
        if offset >= len(data):
            raise DecodeError("truncated bool")
        return bool(data[offset]), offset + 1
    if tag == _TYPE_INT:
        raw, offset = _decode_varint(data, offset)
        return _decode_zigzag(raw), offset
    if tag == _TYPE_FLOAT:
        if offset + 8 > len(data):
            raise DecodeError("truncated float")
        return struct.unpack("<d", data[offset : offset + 8])[0], offset + 8
    if tag == _TYPE_STR:
        length, offset = _decode_varint(data, offset)
        if length > _MAX_LENGTH:
            raise DecodeError(f"string length {length} exceeds limit")
        if offset + length > len(data):
            raise DecodeError("truncated string")
        raw = data[offset : offset + length]
        try:
            return _canonical_str(raw.decode("utf-8")), offset + length
        except UnicodeDecodeError as exc:
            raise DecodeError(f"invalid utf-8 in string: {exc}") from exc
    if tag == _TYPE_MESSAGE:
        length, offset = _decode_varint(data, offset)
        if length > _MAX_LENGTH:
            raise DecodeError(f"message length {length} exceeds limit")
        if offset + length > len(data):
            raise DecodeError("truncated message")
        return _decode_message(data[offset : offset + length]), offset + length
    if tag == _TYPE_LIST:
        length, offset = _decode_varint(data, offset)
        if length > _MAX_LENGTH:
            raise DecodeError(f"list length {length} exceeds limit")
        if offset + length > len(data):
            raise DecodeError("truncated list")
        chunk = data[offset : offset + length]
        count, pos = _decode_varint(chunk, 0)
        if count > _MAX_LENGTH:
            raise DecodeError(f"list count {count} exceeds limit")
        items = []
        for _ in range(count):
            item, pos = _decode_value(chunk, pos)
            items.append(item)
        if pos != len(chunk):
            raise DecodeError("trailing bytes in list payload")
        return items, offset + length
    raise DecodeError(f"unknown value type tag 0x{tag:02x}")


def _encode_message(obj: dict) -> bytes:
    """Encode a dictionary as a sequence of key/value entries."""
    parts = bytearray()
    key_cache = _key_cache
    for key in obj:
        encoded_key = key_cache.get(key)
        if encoded_key is None:
            if not isinstance(key, str):
                raise EncodeError(f"message keys must be strings, got {type(key).__name__}")
            raw_key = key.encode("utf-8")
            encoded_key = _encode_varint(len(raw_key)) + raw_key
            if len(key_cache) < _KEY_CACHE_MAX:
                key_cache[key] = encoded_key
        parts += encoded_key
        _encode_value_into(obj[key], parts)
    return bytes(parts)


def _decode_message(data: bytes) -> dict:
    """Decode a sequence of key/value entries back into a dictionary."""
    obj: dict[str, Any] = {}
    offset = 0
    while offset < len(data):
        key_len, offset = _decode_varint(data, offset)
        if key_len > _MAX_LENGTH:
            raise DecodeError(f"key length {key_len} exceeds limit")
        if offset + key_len > len(data):
            raise DecodeError("truncated key")
        raw_key = data[offset : offset + key_len]
        try:
            key = _canonical_str(raw_key.decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise DecodeError(f"invalid utf-8 in key: {exc}") from exc
        offset += key_len
        value, offset = _decode_value(data, offset)
        obj[key] = value
    return obj


def encode(obj: dict) -> bytes:
    """Serialize an API object (a nested dictionary) to wire bytes."""
    if not isinstance(obj, dict):
        raise EncodeError(f"top-level object must be a dict, got {type(obj).__name__}")
    COUNTERS.encodes += 1
    return _encode_message(obj)


def decode(data: bytes) -> dict:
    """Deserialize wire bytes back into an API object.

    Raises :class:`DecodeError` if the bytes are not a valid encoding —
    the situation in which the Apiserver deletes the "undecryptable"
    resource (paper §II-D).

    Identical bytes always decode to identical trees, so successful decodes
    are served from a bounded cache keyed by the exact value bytes; every
    caller receives an independent deep copy (mutating one reader's object
    can never leak into another reader or back into a store).  Bytes that
    fail to decode are never cached — a corrupted value re-raises
    :class:`DecodeError` on every read, exactly as the uncached codec did.
    """
    if not isinstance(data, (bytes, bytearray)):
        raise DecodeError(f"expected bytes, got {type(data).__name__}")
    key = bytes(data)
    entry = _decode_cache.get(key)
    if entry is not None:
        COUNTERS.decode_cache_hits += 1
        _decode_cache.move_to_end(key)
        blob = entry[1]
        if blob is None:
            # First copying read of this entry: materialize the marshal blob
            # so every further hit is a single C-level loads.
            blob = marshal.dumps(entry[0])
            entry[1] = blob
        return marshal.loads(blob)
    COUNTERS.decodes += 1
    obj = _decode_message(key)
    if len(key) <= _DECODE_CACHE_VALUE_LIMIT:
        # The cache keeps its own copy (via the blob round-trip): the tree
        # handed back to the caller is theirs to mutate.
        blob = marshal.dumps(obj)
        _decode_cache[key] = [marshal.loads(blob), blob]
        if len(_decode_cache) > _DECODE_CACHE_MAX:
            _decode_cache.popitem(last=False)
    return obj


def decode_shared(data: bytes) -> dict:
    """Like :func:`decode`, but the returned tree may be shared.

    The caller must treat the result as **immutable**: on a cache hit the
    cached tree itself is returned, with no per-caller copy.  This is the
    right read path for the Apiserver's watch cache, which never mutates an
    entry in place (entries are always replaced wholesale on writes).  Error
    behaviour is identical to :func:`decode` — corrupted bytes are never
    cached and re-raise :class:`DecodeError` on every read.
    """
    if not isinstance(data, (bytes, bytearray)):
        raise DecodeError(f"expected bytes, got {type(data).__name__}")
    key = bytes(data)
    entry = _decode_cache.get(key)
    if entry is not None:
        COUNTERS.decode_cache_hits += 1
        _decode_cache.move_to_end(key)
        return entry[0]
    COUNTERS.decodes += 1
    obj = _decode_message(key)
    if len(key) <= _DECODE_CACHE_VALUE_LIMIT:
        _decode_cache[key] = [obj, None]
        if len(_decode_cache) > _DECODE_CACHE_MAX:
            _decode_cache.popitem(last=False)
    return obj
