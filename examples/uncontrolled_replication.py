"""The paper's flagship failure: uncontrolled replication ending in an outage.

Reproduces the "Example of uncontrolled replication" of paper §V-C1 at the
cluster level (not through the experiment runner), so that the intermediate
state is visible: a single-bit corruption of the labels that associate Pods
with the networking DaemonSet makes the controller unable to recognise its
pods; it spawns replacements in a loop; the replacements run at
system-node-critical priority, so they preempt the application pods; and the
cluster drifts toward resource exhaustion.

Run with::

    python examples/uncontrolled_replication.py
"""

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.core.injector import FaultSpec, FaultType, InjectionChannel, MutinyInjector
from repro.workloads.scenario import ServiceApplication


def main() -> None:
    cluster = Cluster(ClusterConfig(seed=3))
    print("Booting the cluster (1 control plane + 4 workers)...")
    cluster.boot(stabilization_seconds=30.0)

    user = cluster.user_client()
    application = ServiceApplication(user)
    application.create_shared_objects()
    application.create_deployments(count=3, replicas=2)
    cluster.run_for(20.0)
    pods = cluster.client.list("Pod")
    print(f"Steady state: {len(pods)} pods "
          f"({sum(1 for p in pods if p['metadata']['namespace'] == 'default')} application pods)")

    # Arm Mutiny: flip the least-significant bit of the first character of the
    # DaemonSet's pod selector on the next write of that DaemonSet.  After the
    # corruption the controller no longer recognises any of its pods.
    fault = FaultSpec(
        channel=InjectionChannel.APISERVER_TO_ETCD,
        kind="DaemonSet",
        name="kube-network-manager",
        namespace="kube-system",
        field_path="spec.selector.matchLabels.app",
        fault_type=FaultType.BIT_FLIP,
        bit_index=0,
        occurrence=1,
    )
    injector = MutinyInjector(fault)

    def hook(context, data):
        injector.set_clock(cluster.sim.now)
        return injector.etcd_write_hook(context, data)

    cluster.apiserver.set_etcd_write_hook(hook)
    print(f"\nArmed: {fault.describe()}")

    # Touch the DaemonSet the way an operator (or an upgrade) would, so a
    # DaemonSet write flows through the corrupted channel.
    daemonset = cluster.client.get("DaemonSet", "kube-network-manager", namespace="kube-system")
    daemonset["metadata"]["annotations"]["upgrade"] = "1.1.3"
    cluster.client.update("DaemonSet", daemonset)

    for step in range(6):
        cluster.run_for(10.0, max_events=100_000)
        pods = cluster.client.list("Pod")
        app_pods = [p for p in pods if p["metadata"]["namespace"] == "default"]
        ds_pods = [
            p
            for p in pods
            if p["metadata"]["namespace"] == "kube-system"
            and "network" in str(p["metadata"]["name"])
        ]
        store = cluster.store.stats()
        print(
            f"t={cluster.sim.now:6.1f}s  total pods={len(pods):4d}  "
            f"application pods={len(app_pods):3d}  network-manager pods={len(ds_pods):4d}  "
            f"etcd keys={store['keys']:4d}  space alarm={store['alarm_active']}"
        )

    print(
        "\nThe DaemonSet controller no longer recognises its pods, so it keeps "
        "spawning replacements; their critical priority preempts application "
        "pods and the data store fills up — a Stall escalating to an Outage."
    )


if __name__ == "__main__":
    main()
