"""Quickstart: boot a simulated cluster, deploy an application, inject one fault.

Run with::

    python examples/quickstart.py

The script boots the default five-node cluster, deploys the benchmark web
application, runs one golden (fault-free) experiment and one experiment in
which a single bit of a ReplicaSet label is flipped on its way to the data
store, and prints the classification of both runs.
"""

from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.core.injector import FaultSpec, FaultType, InjectionChannel
from repro.workloads.workload import WorkloadKind


def main() -> None:
    runner = ExperimentRunner(ExperimentConfig())

    print("Building the golden baseline (2 fault-free runs of the deploy workload)...")
    baseline = runner.build_baseline(WorkloadKind.DEPLOY, runs=2)
    print(
        f"  golden runs create {baseline.pods_created_mean:.0f} pods and settle in "
        f"{baseline.settle_time_mean:.1f}s on average"
    )

    print("\nRunning a golden run and classifying it against the baseline...")
    golden = runner.run_golden(WorkloadKind.DEPLOY, seed=1)
    runner.classify(golden, baseline)
    print(f"  orchestrator-level failure: {golden.orchestrator_failure.value}")
    print(f"  client-level failure:       {golden.client_failure.value}")

    print("\nInjecting a single bit-flip into a ReplicaSet's template labels...")
    fault = FaultSpec(
        channel=InjectionChannel.APISERVER_TO_ETCD,
        kind="ReplicaSet",
        field_path="spec.template.metadata.labels.app",
        fault_type=FaultType.BIT_FLIP,
        bit_index=0,
        occurrence=1,
    )
    print(f"  fault: {fault.describe()}")
    result = runner.run_experiment(WorkloadKind.DEPLOY, fault, baseline=baseline, seed=2)
    print(f"  injected: {result.injected}, activated: {result.activated}")
    print(f"  pods created during the run: {result.pods_created}")
    print(f"  orchestrator-level failure: {result.orchestrator_failure.value}")
    print(f"  client-level failure:       {result.client_failure.value}")
    print(f"  user received an error from the Apiserver: {result.user_received_error}")
    print(
        "\nA single flipped bit in the labels that tie pods to their controller "
        "causes uncontrolled pod replication (the paper's F2 finding)."
    )


if __name__ == "__main__":
    main()
