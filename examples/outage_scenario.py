"""Replay of the Figure 2 cluster-outage pattern: heartbeat loss at scale.

Paper Figure 2 describes a real-world GKE outage in which an intermittent
Apiserver failure prevented Kubelets from reporting node health, which made
the platform treat every node as unhealthy.  This example reproduces the
propagation chain on the simulated cluster, and shows the resiliency
strategy that contains it: the node-lifecycle controller's *full disruption
mode* stops evictions when every node looks unhealthy at once, while losing
heartbeats on a single node leads to that node's pods being evicted and
respawned elsewhere.

Run with::

    python examples/outage_scenario.py
"""

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.workloads.scenario import ServiceApplication


def node_ready_counts(cluster):
    ready = 0
    nodes = cluster.client.list("Node")
    for node in nodes:
        for condition in node["status"]["conditions"]:
            if condition["type"] == "Ready" and condition["status"] == "True":
                ready += 1
    return ready, len(nodes)


def main() -> None:
    cluster = Cluster(ClusterConfig(seed=5, pod_eviction_timeout=30.0))
    print("Booting the cluster...")
    cluster.boot(stabilization_seconds=30.0)
    user = cluster.user_client()
    application = ServiceApplication(user)
    application.create_shared_objects()
    application.create_deployments(count=3, replicas=2)
    cluster.run_for(20.0)

    print("\n--- Scenario A: one node stops reporting health ---")
    victim = cluster.kubelet_for("worker-3")
    victim.stop()
    for _ in range(5):
        cluster.run_for(30.0)
        ready, total = node_ready_counts(cluster)
        pods = cluster.client.list("Pod", namespace="default")
        on_victim = sum(1 for pod in pods if pod["spec"].get("nodeName") == "worker-3")
        print(
            f"t={cluster.sim.now:6.1f}s  ready nodes={ready}/{total}  "
            f"application pods={len(pods)}  still bound to worker-3={on_victim}"
        )
    print("The failed node's pods were evicted and respawned on healthy nodes.")

    print("\n--- Scenario B: every node stops reporting health (Figure 2 pattern) ---")
    cluster_b = Cluster(ClusterConfig(seed=6, pod_eviction_timeout=30.0))
    cluster_b.boot(stabilization_seconds=30.0)
    user_b = cluster_b.user_client()
    application_b = ServiceApplication(user_b)
    application_b.create_shared_objects()
    application_b.create_deployments(count=3, replicas=2)
    cluster_b.run_for(20.0)
    for kubelet in cluster_b.kubelets:
        kubelet.stop()
    for _ in range(4):
        cluster_b.run_for(30.0)
        ready, total = node_ready_counts(cluster_b)
        pods = cluster_b.client.list("Pod", namespace="default")
        controller = cluster_b.kcm.get_controller("node-lifecycle")
        print(
            f"t={cluster_b.sim.now:6.1f}s  ready nodes={ready}/{total}  "
            f"application pods={len(pods)}  full-disruption mode={controller.full_disruption_mode}"
        )
    print(
        "With every node unhealthy the controller suspends evictions: the pods "
        "stay bound instead of being mass-deleted, which is exactly the guard "
        "the managed platform in the paper's Figure 2 incident lacked."
    )


if __name__ == "__main__":
    main()
