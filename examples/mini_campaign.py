"""Run a miniature fault/error injection campaign and print the paper's tables.

This is the full Mutiny workflow of paper §IV-C at a small scale: build
golden baselines, record the fields written to etcd during a golden run,
generate the bit-flip / value-set / drop experiments, run them, classify
every run, and print Tables III-V plus the critical-field and user-error
analyses.

Run with::

    python examples/mini_campaign.py           # ~15 experiments per workload
    MINI_CAMPAIGN_SIZE=40 python examples/mini_campaign.py
    MINI_CAMPAIGN_WORKERS=4 python examples/mini_campaign.py   # parallel

The experiments execute through the process-parallel campaign executor;
``MINI_CAMPAIGN_WORKERS`` sets the worker count (default: one per CPU) and
any worker count yields identical results.
"""

import os

from repro.core.analysis import no_effect_fraction, system_wide_fraction
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.report import (
    render_critical_fields,
    render_figure6,
    render_figure7,
    render_table3,
    render_table4,
    render_table5,
)
from repro.workloads.workload import WorkloadKind


def main() -> None:
    size = int(os.environ.get("MINI_CAMPAIGN_SIZE", "15"))
    workers = int(os.environ.get("MINI_CAMPAIGN_WORKERS", "0")) or None
    config = CampaignConfig(
        workloads=(WorkloadKind.DEPLOY, WorkloadKind.SCALE_UP, WorkloadKind.FAILOVER),
        golden_runs=2,
        max_experiments_per_workload=size,
        seed=7,
        workers=workers,
    )
    campaign = Campaign(config)
    print(f"Running a miniature campaign ({size} experiments per workload)...")
    result = campaign.run()
    print(f"Ran {result.total_experiments()} injection experiments; "
          f"activation rate {result.activation_rate() * 100:.0f}%\n")

    print(render_table4(result))
    print()
    print(render_table5(result))
    print()
    print(render_table3(result))
    print()
    print(render_figure6(result.results))
    print()
    print(render_figure7(result.results))
    print()
    print(render_critical_fields(result.results))
    print()
    print(
        f"No-effect fraction: {no_effect_fraction(result.results) * 100:.1f}%  "
        f"(paper: ~70%) | system-wide failures: "
        f"{system_wide_fraction(result.results) * 100:.1f}% (paper: ~3%)"
    )


if __name__ == "__main__":
    main()
